package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// logCapture collects slow-query records thread-safely.
type logCapture struct {
	mu      sync.Mutex
	records []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	lc.records = append(lc.records, fmt.Sprintf(format, args...))
	lc.mu.Unlock()
}

func (lc *logCapture) joined() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return strings.Join(lc.records, "\n---\n")
}

// TestSlowQueryLog: a statement over the threshold logs its text, phase
// spans, and plan.
func TestSlowQueryLog(t *testing.T) {
	var lc logCapture
	opts := DefaultOptions()
	opts.SlowQueryThreshold = time.Nanosecond // everything is slow
	opts.SlowQueryLogf = lc.logf
	e := New(opts)
	s := e.Session()
	s.MustExec("CREATE TABLE S (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 50; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO S VALUES (%d, %d)", i, i))
	}
	lc.mu.Lock()
	lc.records = nil // only observe the query under test
	lc.mu.Unlock()

	s.MustExec("SELECT id FROM S WHERE v < 10")
	out := lc.joined()
	for _, want := range []string{
		"slow query:", "SELECT id FROM S WHERE v < 10",
		"optimize=", "execute=", "plan:", "SeqScan",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query record missing %q:\n%s", want, out)
		}
	}

	// Cache-hit path: the record carries the binds-redacted key and the
	// cached plan, with bind/plancache spans instead of optimize.
	lc.mu.Lock()
	lc.records = nil
	lc.mu.Unlock()
	s.MustExec("SELECT id FROM S WHERE v < 20") // same shape, different literal
	out = lc.joined()
	for _, want := range []string{`key="SELECT ID FROM S WHERE V < ?"`, "execute=", "plan:"} {
		if !strings.Contains(out, want) {
			t.Errorf("cached slow-query record missing %q:\n%s", want, out)
		}
	}
}

// TestSlowQueryDisabledByDefault: with no threshold, nothing logs and no
// trace is created.
func TestSlowQueryDisabledByDefault(t *testing.T) {
	var lc logCapture
	opts := DefaultOptions()
	opts.SlowQueryLogf = lc.logf
	e := New(opts)
	s := e.Session()
	s.MustExec("CREATE TABLE S (id INT PRIMARY KEY)")
	s.MustExec("SELECT * FROM S")
	if out := lc.joined(); out != "" {
		t.Fatalf("slow-query log fired with tracing off:\n%s", out)
	}
}

// TestTraceSpansClosedOnFailure: a statement that dies mid-execute (per-
// statement timeout expiry inside the scan) still renders every span with
// a nonzero duration — CloseOpen ran, nothing dangles.
func TestTraceSpansClosedOnFailure(t *testing.T) {
	var lc logCapture
	opts := DefaultOptions()
	opts.SlowQueryThreshold = time.Nanosecond
	opts.SlowQueryLogf = lc.logf
	e := New(opts)
	s := e.Session()
	s.MustExec("CREATE TABLE F (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 2000; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO F VALUES (%d, %d)", i, i))
	}
	lc.mu.Lock()
	lc.records = nil
	lc.mu.Unlock()

	s.SetStatementTimeout(time.Millisecond)
	_, err := s.Exec("SELECT COUNT(*) FROM F A, F B, F C WHERE A.v < B.v AND B.v < C.v")
	s.SetStatementTimeout(0)
	if err == nil {
		t.Fatal("expected the cross join to time out")
	}
	out := lc.joined()
	if !strings.Contains(out, "slow query:") {
		t.Fatalf("failed statement did not log:\n%s", out)
	}
	if !strings.Contains(out, "execute=") {
		t.Fatalf("failed statement record has no execute span:\n%s", out)
	}
	// The execute span was open when the statement died; CloseOpen must
	// have sealed it at ≥ the 1ms timeout, so it cannot render as 0s.
	if strings.Contains(out, "execute=0s") {
		t.Fatalf("execute span left open (zero duration) after failure:\n%s", out)
	}
	// Session stays usable and traces keep working.
	s.MustExec("SELECT COUNT(*) FROM F")
}

// TestStatementClassStats: statements land in the right class buckets of
// the unified Stats snapshot.
func TestStatementClassStats(t *testing.T) {
	e := New(DefaultOptions())
	s := e.Session()
	s.MustExec("CREATE TABLE C1 (id INT PRIMARY KEY, v INT)")
	s.MustExec("CREATE TABLE C2 (id INT PRIMARY KEY, c1 INT)")
	for i := 0; i < 20; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO C1 VALUES (%d, %d)", i, i))
	}
	s.MustExec("SELECT * FROM C1 WHERE id = 7")            // point (index)
	s.MustExec("SELECT * FROM C1 WHERE v > 3")             // scan
	s.MustExec("SELECT * FROM C1, C2 WHERE C1.id = C2.c1") // join
	s.MustExec("SELECT * FROM C1 WHERE id = 7")            // point again (cache hit)

	st := e.Stats()
	if st.Statements["ddl"].Count < 2 {
		t.Fatalf("ddl count = %d, want >= 2", st.Statements["ddl"].Count)
	}
	if st.Statements["dml"].Count != 20 {
		t.Fatalf("dml count = %d, want 20", st.Statements["dml"].Count)
	}
	if st.Statements["point"].Count != 2 {
		t.Fatalf("point count = %d, want 2 (cold + cache hit): %+v", st.Statements["point"].Count, st.Statements)
	}
	if st.Statements["scan"].Count != 1 {
		t.Fatalf("scan count = %d, want 1: %+v", st.Statements["scan"].Count, st.Statements)
	}
	if st.Statements["join"].Count != 1 {
		t.Fatalf("join count = %d, want 1: %+v", st.Statements["join"].Count, st.Statements)
	}
	if st.StatementsTotal < 26 {
		t.Fatalf("total = %d, want >= 26", st.StatementsTotal)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatal("uptime not positive")
	}
	if st.StatementsPerSecond <= 0 {
		t.Fatal("statements-per-second not positive")
	}
	// Failed statement charges the class error counter.
	if _, err := s.Exec("SELECT nope FROM C1"); err == nil {
		t.Fatal("expected unknown-column error")
	}
	st = e.Stats()
	var errs int64
	for _, cs := range st.Statements {
		errs += cs.Errors
	}
	if errs == 0 {
		t.Fatalf("no class recorded the failed statement: %+v", st.Statements)
	}
}

// TestWriteConflictCounter: first-committer-wins rejections show up in the
// unified snapshot and the metrics registry.
func TestWriteConflictCounter(t *testing.T) {
	e := New(DefaultOptions())
	a, b := e.Session(), e.Session()
	a.MustExec("CREATE TABLE W (id INT PRIMARY KEY, v INT)")
	a.MustExec("INSERT INTO W VALUES (1, 10)")
	a.MustExec("BEGIN")
	a.MustExec("SELECT v FROM W WHERE id = 1") // pin snapshot
	b.MustExec("UPDATE W SET v = 100 WHERE id = 1")
	if _, err := a.Exec("UPDATE W SET v = 11 WHERE id = 1"); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("got %v, want ErrWriteConflict", err)
	}
	if got := e.Stats().WriteConflicts; got != 1 {
		t.Fatalf("WriteConflicts = %d, want 1", got)
	}
}

// TestVacuumCounters: a sweep records itself and what it reclaimed.
func TestVacuumCounters(t *testing.T) {
	opts := DefaultOptions()
	opts.VacuumDeadRows = -1 // manual control
	e := New(opts)
	s := e.Session()
	s.MustExec("CREATE TABLE V (id INT PRIMARY KEY)")
	for i := 0; i < 10; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO V VALUES (%d)", i))
	}
	s.MustExec("DELETE FROM V WHERE id < 5")
	purged, _ := e.Vacuum()
	st := e.Stats()
	if st.Vacuum.Sweeps != 1 {
		t.Fatalf("sweeps = %d, want 1", st.Vacuum.Sweeps)
	}
	if int(st.Vacuum.Purged) != purged || purged == 0 {
		t.Fatalf("purged counter = %d, sweep returned %d", st.Vacuum.Purged, purged)
	}
}

// TestPreparedHitTracingOffNoExtraAllocs guards the prepared-hit fast path
// (BenchmarkExecRepeatedPointQueryCached): with tracing off, the
// observability layer must add zero allocations per statement — its whole
// cost is two time.Now calls and one histogram observe. Tracing on
// allocates (trace, spans, plan dump); off must stay strictly cheaper.
func TestPreparedHitTracingOffNoExtraAllocs(t *testing.T) {
	build := func(threshold time.Duration) *Session {
		opts := DefaultOptions()
		opts.SlowQueryThreshold = threshold
		opts.SlowQueryLogf = func(string, ...any) {}
		e := New(opts)
		s := e.Session()
		s.MustExec("CREATE TABLE P (id INT PRIMARY KEY, v INT)")
		for i := 0; i < 100; i++ {
			s.MustExec(fmt.Sprintf("INSERT INTO P VALUES (%d, %d)", i, i))
		}
		return s
	}
	const q = "SELECT v FROM P WHERE id = 42"
	off, on := build(0), build(time.Hour)
	off.MustExec(q)
	on.MustExec(q)
	offAllocs := testing.AllocsPerRun(200, func() { off.MustExec(q) })
	onAllocs := testing.AllocsPerRun(200, func() { on.MustExec(q) })
	t.Logf("prepared-hit allocs/stmt: tracing off %.1f, on %.1f", offAllocs, onAllocs)
	if offAllocs >= onAllocs {
		t.Fatalf("tracing off allocates %.1f/stmt, not less than tracing on (%.1f) — the off path is paying for tracing",
			offAllocs, onAllocs)
	}
	// Absolute ceiling with generous headroom over the measured baseline
	// (~30 allocs for parse-skip, row materialization, result): catches a
	// future regression that sneaks allocation into govern/observeStmt.
	if offAllocs > 60 {
		t.Fatalf("tracing-off prepared hit allocates %.1f/stmt (ceiling 60) — fast path regressed", offAllocs)
	}
}

// TestWALLatencyHistograms: a durable engine feeds the append/fsync/batch
// histograms attached to the file log at recovery.
func TestWALLatencyHistograms(t *testing.T) {
	opts := DefaultOptions()
	opts.DataDir = t.TempDir()
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := e.Session()
	s.MustExec("CREATE TABLE D (id INT PRIMARY KEY)")
	for i := 0; i < 5; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO D VALUES (%d)", i))
	}
	var sb strings.Builder
	if err := e.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, h := range []string{
		"wal_append_latency_seconds", "wal_fsync_latency_seconds",
		"wal_group_commit_batch_size",
	} {
		if !strings.Contains(out, h+"_count") {
			t.Errorf("exposition missing %s", h)
		}
		if strings.Contains(out, h+"_count 0\n") {
			t.Errorf("%s never observed anything:\n%s", h, out)
		}
	}
}

// TestMetricsExposition: the engine registry renders Prometheus text
// covering statements, caches, WAL, and MVCC.
func TestMetricsExposition(t *testing.T) {
	e := New(DefaultOptions())
	s := e.Session()
	s.MustExec("CREATE TABLE M (id INT PRIMARY KEY)")
	s.MustExec("INSERT INTO M VALUES (1)")
	s.MustExec("SELECT * FROM M")
	var sb strings.Builder
	if err := e.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"stmt_latency_scan_seconds_count",
		"stmt_latency_dml_seconds_count 1",
		"mvcc_write_conflicts_total 0",
		"plancache_hits_total",
		"comat_hits_total",
		"pool_hits_total",
		"wal_appends_total",
		"engine_uptime_seconds",
		"navcache_pointer_hops_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
