package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"sqlxnf/internal/types"
)

func cacheFixture(t *testing.T) (*Engine, *Session) {
	t.Helper()
	e := NewDefault()
	s := e.Session()
	s.MustExec(`CREATE TABLE DEPT (dno INT PRIMARY KEY, dname VARCHAR);
		CREATE TABLE EMP (eno INT PRIMARY KEY, ename VARCHAR, sal FLOAT, edno INT);
		CREATE INDEX emp_edno ON EMP (edno)`)
	for d := 1; d <= 5; d++ {
		s.MustExec(fmt.Sprintf("INSERT INTO DEPT VALUES (%d, 'd%d')", d, d))
		for i := 0; i < 6; i++ {
			eno := d*10 + i
			s.MustExec(fmt.Sprintf("INSERT INTO EMP VALUES (%d, 'e%d', %d, %d)",
				eno, eno, 1000+eno*10, d))
		}
	}
	return e, s
}

func rowsFingerprint(r *Result) string {
	var b strings.Builder
	for _, row := range r.Rows {
		b.WriteString(row.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestPlanCacheHitMatchesColdCompile: the second execution must hit the
// cache and return exactly the cold result; textual variants of the same
// statement normalize to one entry.
func TestPlanCacheHitMatchesColdCompile(t *testing.T) {
	e, s := cacheFixture(t)
	q := "SELECT d.dname, e.ename FROM DEPT d, EMP e WHERE d.dno = e.edno AND e.sal > 1200"
	cold := s.MustExec(q)
	st0 := e.PlanCacheStats()
	if st0.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st0.Entries)
	}
	hit := s.MustExec(q)
	st1 := e.PlanCacheStats()
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("hits %d -> %d, want +1", st0.Hits, st1.Hits)
	}
	if rowsFingerprint(cold) != rowsFingerprint(hit) {
		t.Fatalf("cache hit differs from cold compile:\n%s\nvs\n%s",
			rowsFingerprint(cold), rowsFingerprint(hit))
	}
	if hit.Schema.String() != cold.Schema.String() {
		t.Fatalf("schema differs: %v vs %v", hit.Schema, cold.Schema)
	}
	// Case and whitespace variants share the entry (string literals do not
	// case-fold, so use one without strings).
	variant := "select  d.dname, e.ename\nFROM dept d, emp e WHERE d.dno = e.edno AND e.sal > 1200"
	v := s.MustExec(variant)
	if e.PlanCacheStats().Entries != 1 {
		t.Errorf("variant created a second entry")
	}
	if rowsFingerprint(v) != rowsFingerprint(cold) {
		t.Errorf("variant result differs")
	}
}

// TestPlanCacheSeesDML: cached plans read live heaps — DML between
// executions must show up without any invalidation.
func TestPlanCacheSeesDML(t *testing.T) {
	_, s := cacheFixture(t)
	q := "SELECT ename FROM EMP WHERE edno = 3"
	before := len(s.MustExec(q).Rows)
	s.MustExec("INSERT INTO EMP VALUES (999, 'new', 5000, 3)")
	after := len(s.MustExec(q).Rows)
	if after != before+1 {
		t.Fatalf("rows %d -> %d, want +1 (cached plan served stale data)", before, after)
	}
	s.MustExec("DELETE FROM EMP WHERE eno = 999")
	if got := len(s.MustExec(q).Rows); got != before {
		t.Fatalf("rows after delete = %d, want %d", got, before)
	}
}

// TestPlanCacheInvalidation: DDL (CREATE/DROP TABLE/INDEX) and ANALYZE bump
// the catalog epoch and evict affected entries — a dropped-and-recreated
// table must not be served through a stale plan.
func TestPlanCacheInvalidation(t *testing.T) {
	e, s := cacheFixture(t)
	q := "SELECT ename FROM EMP WHERE edno = 2"
	s.MustExec(q)

	// ANALYZE evicts: the next execution recompiles under fresh stats.
	s.MustExec("ANALYZE EMP")
	s.MustExec(q)
	st := e.PlanCacheStats()
	if st.Evictions < 1 {
		t.Fatalf("ANALYZE did not evict (stats %+v)", st)
	}

	// CREATE INDEX evicts.
	hits0 := e.PlanCacheStats().Hits
	s.MustExec("CREATE INDEX emp_sal ON EMP (sal)")
	s.MustExec(q)
	if e.PlanCacheStats().Hits != hits0 {
		t.Fatalf("post-DDL execution must be a recompile, not a hit")
	}

	// DROP TABLE + recreate with a different shape: the old plan must not
	// run against the new table.
	s.MustExec(q)
	s.MustExec("DROP TABLE EMP")
	s.MustExec(`CREATE TABLE EMP (eno INT PRIMARY KEY, ename VARCHAR, sal FLOAT, edno INT)`)
	s.MustExec("INSERT INTO EMP VALUES (1, 'only', 9000, 2)")
	r := s.MustExec(q)
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "only" {
		t.Fatalf("post-recreate rows = %v", r.Rows)
	}
}

// TestPlanCacheConcurrentQueries: many sessions repeatedly running the same
// statements against one shared engine must all see correct results (run
// with -race; cached plan instances must never be shared mid-flight).
func TestPlanCacheConcurrentQueries(t *testing.T) {
	e, s := cacheFixture(t)
	queries := []struct {
		q    string
		want int
	}{
		{"SELECT ename FROM EMP WHERE edno = 1", 6},
		{"SELECT d.dname, e.ename FROM DEPT d, EMP e WHERE d.dno = e.edno", 30},
		{"SELECT COUNT(*) FROM EMP", 1},
	}
	// Warm the cache.
	for _, qq := range queries {
		s.MustExec(qq.q)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := e.Session()
			for i := 0; i < 30; i++ {
				qq := queries[(g+i)%len(queries)]
				r, err := sess.Exec(qq.q)
				if err != nil {
					t.Error(err)
					return
				}
				if len(r.Rows) != qq.want {
					t.Errorf("%s: rows = %d, want %d", qq.q, len(r.Rows), qq.want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := e.PlanCacheStats(); st.Hits < 200 {
		t.Errorf("expected mostly hits under the concurrent workload, stats %+v", st)
	}
}

// TestPlanCacheDisabled: PlanCacheSize < 0 turns the cache off entirely.
func TestPlanCacheDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.PlanCacheSize = -1
	e := New(opts)
	s := e.Session()
	s.MustExec("CREATE TABLE T (x INT); INSERT INTO T VALUES (1)")
	s.MustExec("SELECT x FROM T")
	s.MustExec("SELECT x FROM T")
	if st := e.PlanCacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache has activity: %+v", st)
	}
}

// TestPlanCacheXNFNodeCached: FROM "VIEW.NODE" plans no longer snapshot
// rows at build — the NodeScan leaf resolves the component table through
// the CO cache at Open — so they live in the prepared-plan cache like any
// SELECT: re-execution hits, a component table's DML version bump evicts
// the entry (its cardinality estimates derive from the materialization),
// and results immediately after DML equal a cold compile as multisets.
func TestPlanCacheXNFNodeCached(t *testing.T) {
	e, s := cacheFixture(t)
	s.MustExec(`CREATE VIEW DEPS AS
		OUT OF Xd AS DEPT, Xe AS EMP, emp AS (RELATE Xd, Xe WHERE Xd.dno = Xe.edno) TAKE *`)
	q := `SELECT ename FROM "DEPS.Xe" WHERE sal > 1200`
	cold := s.MustExec(q)
	st0 := e.PlanCacheStats()
	if st0.Entries != 1 {
		t.Fatalf("node-ref statement did not cache: %+v", st0)
	}
	hit := s.MustExec(q)
	st1 := e.PlanCacheStats()
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("re-execution was not a cache hit: %+v -> %+v", st0, st1)
	}
	if multiset(cold.Rows) != multiset(hit.Rows) {
		t.Fatalf("cache hit differs from cold compile:\n%s\nvs\n%s",
			multiset(cold.Rows), multiset(hit.Rows))
	}

	// DML to a component table bumps its version: the entry evicts, the
	// next execution recompiles against the refreshed materialization, and
	// the result matches a cold engine immediately.
	s.MustExec("INSERT INTO EMP VALUES (998, 'fresh', 9999, 1)")
	hits0 := e.PlanCacheStats().Hits
	after := s.MustExec(q)
	st2 := e.PlanCacheStats()
	if st2.Hits != hits0 {
		t.Fatalf("post-DML execution must recompile, not hit (%+v)", st2)
	}
	if st2.Evictions < 1 {
		t.Fatalf("component-table DML did not evict the node-ref plan: %+v", st2)
	}
	found := false
	for _, row := range after.Rows {
		if row[0].Str() == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-DML node-ref query served stale rows: %v", after.Rows)
	}
	// And the refreshed entry serves hits again.
	s.MustExec(q)
	if st3 := e.PlanCacheStats(); st3.Hits != st2.Hits+1 {
		t.Fatalf("refreshed entry did not hit: %+v", st3)
	}

	// DML to a table outside the view's component set must NOT evict.
	s.MustExec("CREATE TABLE UNRELATED (x INT)")
	s.MustExec(q) // recompile once for the DDL epoch bump
	hits1 := e.PlanCacheStats().Hits
	s.MustExec("INSERT INTO UNRELATED VALUES (1)")
	s.MustExec(q)
	if st4 := e.PlanCacheStats(); st4.Hits != hits1+1 {
		t.Fatalf("non-component DML disturbed the node-ref plan: %+v", st4)
	}
}

// multiset canonicalizes rows order-insensitively.
func multiset(rows []types.Row) string {
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = r.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestNormalizeSQL pins the keying rules: whitespace collapses, identifiers
// case-fold, string literals stay verbatim.
func TestNormalizeSQL(t *testing.T) {
	cases := [][2]string{
		{"select *\n\tfrom  t", "SELECT * FROM T"},
		{"  SELECT x FROM t  ", "SELECT X FROM T"},
		{"select 'It''s  a str' from t", "SELECT 'It''s  a str' FROM T"},
	}
	for _, c := range cases {
		if got := normalizeSQL(c[0]); got != c[1] {
			t.Errorf("normalizeSQL(%q) = %q, want %q", c[0], got, c[1])
		}
	}
	// Case inside string literals must NOT fold into the same key.
	if normalizeSQL("SELECT * FROM T WHERE s = 'a'") == normalizeSQL("SELECT * FROM T WHERE s = 'A'") {
		t.Error("string literals must stay case-sensitive in cache keys")
	}
}

// TestAnalyzeEndToEnd: ANALYZE via SQL installs stats the optimizer
// consumes, and EXPLAIN surfaces the resulting cardinality estimates.
func TestAnalyzeEndToEnd(t *testing.T) {
	e, s := cacheFixture(t)
	r := s.MustExec("ANALYZE")
	if r.RowsAffected != 35 { // 5 depts + 30 emps
		t.Fatalf("ANALYZE rows = %d, want 35", r.RowsAffected)
	}
	emp, err := e.Catalog().Table("EMP")
	if err != nil {
		t.Fatal(err)
	}
	ts := emp.Stats()
	if ts == nil || ts.Rows != 30 {
		t.Fatalf("EMP stats = %+v", ts)
	}
	if cs := ts.Col(3); cs == nil || cs.Distinct != 5 {
		t.Fatalf("edno NDV = %+v, want 5", ts.Col(3))
	}
	// edno = const: estimate 30/5 = 6 rows, visible in EXPLAIN.
	ex := s.MustExec("EXPLAIN SELECT ename FROM EMP WHERE edno = 2")
	if !strings.Contains(ex.Explain, "est rows=6") {
		t.Errorf("EXPLAIN missing stats-driven estimate:\n%s", ex.Explain)
	}
	// ANALYZE of one table only.
	if r := s.MustExec("ANALYZE DEPT"); r.RowsAffected != 5 {
		t.Errorf("ANALYZE DEPT rows = %d, want 5", r.RowsAffected)
	}
	// Incremental maintenance: min/max extend on insert without re-ANALYZE.
	s.MustExec("INSERT INTO EMP VALUES (2000, 'big', 99999, 12)")
	if cs := emp.Stats().Col(3); cs.Max.Int() != 12 {
		t.Errorf("max(edno) after insert = %v, want 12", cs.Max)
	}
}

// TestExplainConcurrentWithDML: EXPLAIN compiles through the stats-reading
// cost model; it must take the same shared locks a SELECT would, so running
// it against concurrent INSERTs is race-free (run with -race).
func TestExplainConcurrentWithDML(t *testing.T) {
	e, s := cacheFixture(t)
	s.MustExec("ANALYZE")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		sess := e.Session()
		for i := 0; i < 40; i++ {
			r := sess.MustExec("EXPLAIN SELECT ename FROM EMP WHERE sal > 1500 AND edno = 2")
			if !strings.Contains(r.Explain, "est rows=") {
				t.Error("explain lost its estimates")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		sess := e.Session()
		for i := 0; i < 40; i++ {
			sess.MustExec(fmt.Sprintf("INSERT INTO EMP VALUES (%d, 'c%d', %d, 3)", 5000+i, i, 900+i))
		}
	}()
	wg.Wait()
}

// TestRollbackCompensatesStats: incremental sketch maintenance must reverse
// on rollback — NULL counts return to their pre-transaction values.
func TestRollbackCompensatesStats(t *testing.T) {
	e, s := cacheFixture(t)
	s.MustExec("ANALYZE EMP")
	emp, err := e.Catalog().Table("EMP")
	if err != nil {
		t.Fatal(err)
	}
	nulls0 := emp.Stats().Col(3).Nulls
	s.MustExec("BEGIN")
	s.MustExec("INSERT INTO EMP (eno, ename) VALUES (7777, 'ghost')") // edno NULL
	if got := emp.Stats().Col(3).Nulls; got != nulls0+1 {
		t.Fatalf("mid-tx NULL count = %d, want %d", got, nulls0+1)
	}
	s.MustExec("ROLLBACK")
	if got := emp.Stats().Col(3).Nulls; got != nulls0 {
		t.Fatalf("post-rollback NULL count = %d, want %d (phantom row skewed stats)", got, nulls0)
	}
}
