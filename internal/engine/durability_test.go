package engine

import (
	"fmt"
	"strings"
	"testing"

	"sqlxnf/internal/wal"
)

// TestRecoveryDuplicateRows is the regression for RID-based replay: a table
// without a key holds byte-identical rows, and each logged delete/update
// carries its own RID. Replay must consume a distinct physical row per
// record — a value-based fallback that re-matches the same "first" row
// would delete it several times and corrupt the multiset.
func TestRecoveryDuplicateRows(t *testing.T) {
	e := NewDefault()
	s := e.Session()
	s.MustExec("CREATE TABLE D (a INT, b VARCHAR)")
	for i := 0; i < 3; i++ {
		s.MustExec("INSERT INTO D VALUES (1, 'dup')")
	}
	s.MustExec("INSERT INTO D VALUES (2, 'solo')")
	// Three deletes with identical before-images but distinct RIDs.
	if r := s.MustExec("DELETE FROM D WHERE a = 1"); r.RowsAffected != 3 {
		t.Fatalf("delete affected %d rows, want 3", r.RowsAffected)
	}
	// Fresh duplicates at new RIDs, then two updates with identical
	// before-images.
	s.MustExec("INSERT INTO D VALUES (1, 'dup')")
	s.MustExec("INSERT INTO D VALUES (1, 'dup')")
	if r := s.MustExec("UPDATE D SET b = 'changed' WHERE a = 1"); r.RowsAffected != 2 {
		t.Fatalf("update affected %d rows, want 2", r.RowsAffected)
	}
	want := fingerprint(t, e)

	re, err := Recover(e.SnapshotWAL(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, re); got != want {
		t.Fatalf("recovered state differs from original:\n got: %s\nwant: %s", got, want)
	}
	rs := re.Session()
	r, _ := rs.Exec("SELECT COUNT(*) FROM D WHERE b = 'changed'")
	if r.Rows[0][0].Int() != 2 {
		t.Errorf("changed count after recovery = %v, want 2", r.Rows[0][0])
	}
	r, _ = rs.Exec("SELECT COUNT(*) FROM D")
	if r.Rows[0][0].Int() != 3 {
		t.Errorf("total count after recovery = %v, want 3", r.Rows[0][0])
	}
}

// TestRecoveryExplainParity: ANALYZE records replay at recovery, so a plan
// whose access path depends on statistics must come out identical after a
// crash. Without stats replay the optimizer would fall back to defaults and
// could flip the scan choice.
func TestRecoveryExplainParity(t *testing.T) {
	e := NewDefault()
	s := e.Session()
	s.MustExec(companyDDL + fig1Data)
	for i := 0; i < 200; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO EMP VALUES (%d, 'x%d', %d, 'staff', %d, NULL)",
			1000+i, i, 1000+10*(i%5), 1+i%3))
	}
	s.MustExec("ANALYZE EMP")
	s.MustExec("ANALYZE DEPT")
	const q = "EXPLAIN SELECT d.dname FROM DEPT d, EMP e WHERE d.dno = e.edno AND e.sal > 1025"
	before, err := s.Exec(q)
	if err != nil {
		t.Fatal(err)
	}

	re, err := Recover(e.SnapshotWAL(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	after, err := re.Session().Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if before.Explain != after.Explain {
		t.Fatalf("plan changed across recovery:\n-- before --\n%s\n-- after --\n%s",
			before.Explain, after.Explain)
	}
}

// TestRecoveryIdempotent: recovering a recovered engine's log yields the same
// state again — replay must not duplicate rows, re-run DDL destructively, or
// renumber anything observable.
func TestRecoveryIdempotent(t *testing.T) {
	e := NewDefault()
	s := e.Session()
	s.MustExec(companyDDL + fig1Data)
	s.MustExec("UPDATE EMP SET sal = 2500 WHERE eno = 101")
	s.MustExec("DELETE FROM SKILLS WHERE sno = 2")
	s.MustExec("ANALYZE EMP")
	s.MustExec("BEGIN; INSERT INTO DEPT VALUES (9, 'loser', 'XX', 0, 0)") // never committed

	r1, err := Recover(e.SnapshotWAL(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fp1 := fingerprint(t, r1)
	r2, err := Recover(r1.SnapshotWAL(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fp2 := fingerprint(t, r2); fp2 != fp1 {
		t.Fatalf("second recovery diverged:\n 1st: %s\n 2nd: %s", fp1, fp2)
	}
	r3, err := Recover(r2.SnapshotWAL(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fp3 := fingerprint(t, r3); fp3 != fp1 {
		t.Fatalf("third recovery diverged from first")
	}
}

// TestCheckpointStatement covers the CHECKPOINT statement's contract: it
// refuses to run with uncommitted writes in the session's transaction, works
// on a clean session, and on a durable engine truncates the log so that
// reopen replays only the post-checkpoint suffix.
func TestCheckpointStatement(t *testing.T) {
	e := NewDefault()
	s := e.Session()
	s.MustExec("CREATE TABLE T (a INT)")
	s.MustExec("BEGIN; INSERT INTO T VALUES (1)")
	_, err := s.Exec("CHECKPOINT")
	if err == nil || !strings.Contains(err.Error(), "CHECKPOINT cannot run inside a transaction") {
		t.Fatalf("CHECKPOINT inside a dirty transaction: err = %v", err)
	}
	// A statement failure inside an explicit transaction rolls the whole
	// transaction back, so the insert is gone and the session is clean.
	r, _ := s.Exec("SELECT COUNT(*) FROM T")
	if r.Rows[0][0].Int() != 0 {
		t.Fatalf("refused CHECKPOINT should have rolled back the insert, count = %v", r.Rows[0][0])
	}
	if _, err := s.Exec("CHECKPOINT"); err != nil {
		t.Fatalf("CHECKPOINT on a clean session: %v", err)
	}

	dir := t.TempDir()
	de, err := Open(crashOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	ds := de.Session()
	ds.MustExec("CREATE TABLE U (a INT)")
	for i := 0; i < 50; i++ {
		ds.MustExec("INSERT INTO U VALUES (1)")
	}
	before := de.WALStats().File.Bytes
	ds.MustExec("CHECKPOINT")
	after := de.WALStats().File.Bytes
	if after >= before {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", before, after)
	}
	if err := de.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(crashOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.RecoveryInfo()
	if ri.CheckpointLSN == 0 {
		t.Fatal("reopen found no checkpoint")
	}
	if ri.Replayed != 0 {
		t.Fatalf("clean reopen right after checkpoint replayed %d records, want 0", ri.Replayed)
	}
	cnt, _ := re.Session().Exec("SELECT COUNT(*) FROM U")
	if cnt.Rows[0][0].Int() != 50 {
		t.Errorf("row count after checkpointed reopen = %v, want 50", cnt.Rows[0][0])
	}
}

// TestAutoCheckpoint: with a tiny CheckpointBytes threshold, commits trigger
// background checkpoints that keep the durable log bounded without any
// explicit CHECKPOINT statement.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.DataDir = dir
	opts.Sync = wal.SyncAlways
	opts.WALSegmentBytes = 1024
	opts.CheckpointBytes = 512
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := e.Session()
	s.MustExec("CREATE TABLE T (a INT, b VARCHAR)")
	for i := 0; i < 200; i++ {
		s.MustExec("INSERT INTO T VALUES (1, 'some filler payload to grow the log')")
	}
	st := e.WALStats()
	if st.File.LastCheckpoint == 0 {
		t.Fatal("no auto-checkpoint fired despite a 512-byte threshold")
	}
	if st.AutoCheckpointFailures != 0 {
		t.Fatalf("%d auto-checkpoint failures", st.AutoCheckpointFailures)
	}
	// The log stays bounded: well under the raw volume of 200 logged inserts.
	if st.File.Bytes > 64<<10 {
		t.Fatalf("log grew to %d bytes despite auto-checkpointing", st.File.Bytes)
	}
}
