package engine

import (
	"container/list"
	"strings"
	"sync"

	"sqlxnf/internal/comat"
	"sqlxnf/internal/exec"
	"sqlxnf/internal/optimizer"
	"sqlxnf/internal/parser"
	"sqlxnf/internal/qgm"
	"sqlxnf/internal/types"
)

// planCache is the engine's LRU prepared-plan cache. Entries are keyed by
// normalized SQL text and stamped with the catalog schema/stats epoch at
// compile time: DDL and ANALYZE bump the epoch, so stale entries evict on
// the next lookup instead of serving plans over dropped schema or outdated
// cost estimates. DML does not invalidate — plans reference live heaps.
//
// A cached plan is a template with per-execution operator state, so it never
// runs directly: each execution acquires a structural clone, and finished
// clones return to a small per-entry pool so their row buffers warm across
// executions (repeated prepared statements pay zero compile work and few
// steady-state allocations).
type planCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // of *planEntry; front = most recently used
	entries map[string]*list.Element
	// versions reads a table's current DML version counter; entries carrying
	// a dependency snapshot (node-reference plans) evict when any recorded
	// version moves, so their cardinality estimates re-derive from the
	// view's fresh materialization.
	versions comat.VersionFn

	// Counters (read via Stats) let tests and benches observe behavior.
	hits, misses, evictions int64
}

// planEntry is one cached statement. Parameterized entries (nParams > 0)
// additionally carry the binding contract: how many literals the statement
// shape extracts, and the bind guards recording the value-dependent planning
// assumptions that must be re-checked per execution (see optimizer.BindGuard
// and Session.runCachedPlan).
type planEntry struct {
	key     string
	epoch   uint64
	tmpl    exec.Plan // never executed directly
	schema  types.Schema
	tables  []string // base tables to lock before execution
	nParams int
	guards  []optimizer.BindGuard
	// deps is the version snapshot of the base tables behind FROM
	// "VIEW.NODE" references (nil for plans without node references). DML
	// still does not invalidate ordinary plans — they read live heaps — but
	// a node-ref plan's NodeScan estimates were derived from a specific
	// materialization, so a component-table change evicts the entry and the
	// next execution replans against the refreshed CO.
	deps []comat.TableDep
	// class is the statement's histogram bucket, computed from the plan
	// shape at compile time so hit executions classify for free.
	class stmtClass

	poolMu sync.Mutex
	pool   []exec.Plan // idle executable clones
}

// maxPooledPlans bounds the per-entry instance pool; beyond it, clones are
// simply dropped (cheap — the template still avoids recompilation).
const maxPooledPlans = 4

func newPlanCache(capacity int, versions comat.VersionFn) *planCache {
	return &planCache{cap: capacity, lru: list.New(),
		entries: map[string]*list.Element{}, versions: versions}
}

// PlanCacheStats is a snapshot of cache activity.
type PlanCacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// Stats snapshots the counters.
func (pc *planCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{Hits: pc.hits, Misses: pc.misses, Evictions: pc.evictions,
		Entries: len(pc.entries)}
}

// lookup returns the entry for key if it exists and is current at epoch;
// stale entries are evicted on sight. countMiss selects whether an absent
// key charges the miss counter.
func (pc *planCache) lookup(key string, epoch uint64, countMiss bool) *planEntry {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if ok {
		ent := el.Value.(*planEntry)
		if ent.epoch == epoch && pc.depsCurrent(ent) {
			pc.lru.MoveToFront(el)
			pc.hits++
			return ent
		}
		pc.lru.Remove(el)
		delete(pc.entries, key)
		pc.evictions++
	}
	if countMiss {
		pc.misses++
	}
	return nil
}

// depsCurrent reports whether the entry's node-reference dependency
// versions still match the catalog.
func (pc *planCache) depsCurrent(ent *planEntry) bool {
	for _, d := range ent.deps {
		cur, ok := pc.versions(d.Table)
		if !ok || cur != d.Version {
			return false
		}
	}
	return true
}

// get is the compile-path lookup: absence counts as a miss.
func (pc *planCache) get(key string, epoch uint64) *planEntry {
	return pc.lookup(key, epoch, true)
}

// peek is the pre-parse fast-path lookup. "Not cached" there usually just
// means "not a SELECT" (every INSERT/UPDATE script probes too), which would
// drown the miss counter in DML noise — so absence is not charged.
func (pc *planCache) peek(key string, epoch uint64) *planEntry {
	return pc.lookup(key, epoch, false)
}

// put inserts an entry, evicting from the LRU tail past capacity.
func (pc *planCache) put(ent *planEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[ent.key]; ok {
		// Racing compile of the same statement: keep the fresher epoch.
		if el.Value.(*planEntry).epoch <= ent.epoch {
			el.Value = ent
			pc.lru.MoveToFront(el)
		}
		return
	}
	pc.entries[ent.key] = pc.lru.PushFront(ent)
	for pc.lru.Len() > pc.cap {
		back := pc.lru.Back()
		pc.lru.Remove(back)
		delete(pc.entries, back.Value.(*planEntry).key)
		pc.evictions++
	}
}

// acquire hands out an executable plan instance: a pooled clone when one is
// idle, else a fresh clone of the template.
func (ent *planEntry) acquire() (exec.Plan, bool) {
	ent.poolMu.Lock()
	if n := len(ent.pool); n > 0 {
		p := ent.pool[n-1]
		ent.pool = ent.pool[:n-1]
		ent.poolMu.Unlock()
		return p, true
	}
	ent.poolMu.Unlock()
	return exec.ClonePlan(ent.tmpl)
}

// release returns an instance to the pool.
func (ent *planEntry) release(p exec.Plan) {
	ent.poolMu.Lock()
	if len(ent.pool) < maxPooledPlans {
		ent.pool = append(ent.pool, p)
	}
	ent.poolMu.Unlock()
}

// normalizeSQL canonicalizes statement text for cache keying: whitespace
// runs collapse to one space and characters case-fold — except inside
// single-quoted string literals, which stay verbatim (SQL identifiers and
// keywords match case-insensitively; string values do not).
func normalizeSQL(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inStr := false
	pendingSpace := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if inStr {
			b.WriteByte(ch)
			if ch == '\'' {
				inStr = false
			}
			continue
		}
		switch {
		case ch == '\'':
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			inStr = true
			b.WriteByte(ch)
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			pendingSpace = true
		default:
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			if ch >= 'a' && ch <= 'z' {
				ch -= 'a' - 'A'
			}
			b.WriteByte(ch)
		}
	}
	return b.String()
}

// walkBoxes visits every box reachable from root — through quantifiers,
// union inputs, and EXISTS subqueries hanging off body expressions. visit
// returning false stops the traversal. Both the lock-set collection and the
// snapshot check ride on this single walker so they can never see different
// trees.
func walkBoxes(root *qgm.Box, visit func(*qgm.Box) bool) {
	seen := map[*qgm.Box]bool{}
	stopped := false
	var walk func(b *qgm.Box)
	walk = func(b *qgm.Box) {
		if b == nil || seen[b] || stopped {
			return
		}
		seen[b] = true
		if !visit(b) {
			stopped = true
			return
		}
		for _, q := range b.Quants {
			walk(q.Input)
		}
		for _, in := range b.Inputs {
			walk(in)
		}
		walkBoxExprs(b, func(e qgm.Expr) {
			if ex, ok := e.(*qgm.Exists); ok {
				walk(ex.Sub)
			}
		})
	}
	walk(root)
}

// collectBoxTables lists the distinct base tables under a box (lock set for
// cached executions), including tables reached only through EXISTS subplans.
func collectBoxTables(box *qgm.Box) []string {
	seenTbl := map[string]bool{}
	var out []string
	walkBoxes(box, func(b *qgm.Box) bool {
		if b.Kind == qgm.KindBase && !seenTbl[b.Table.Name] {
			seenTbl[b.Table.Name] = true
			out = append(out, b.Table.Name)
		}
		return true
	})
	return out
}

// boxSnapshotsData reports whether the box tree embeds data materialized at
// build time (KindValues boxes — today only FROM-less SELECTs produce one
// at the statement level; XNF node references build KindNodeRef boxes that
// bind rows at execute and cache freely). Plans embedding a Values snapshot
// would freeze it if cached, so they stay uncached.
func boxSnapshotsData(box *qgm.Box) bool {
	found := false
	walkBoxes(box, func(b *qgm.Box) bool {
		if b.Kind == qgm.KindValues {
			found = true
		}
		return !found
	})
	return found
}

// walkBoxExprs visits every expression hanging off a box body.
func walkBoxExprs(b *qgm.Box, visit func(qgm.Expr)) {
	each := func(e qgm.Expr) {
		qgm.WalkExpr(e, func(x qgm.Expr) bool {
			visit(x)
			return true
		})
	}
	each(b.Pred)
	for _, h := range b.Head {
		each(h.Expr)
	}
	for _, g := range b.GroupBy {
		each(g)
	}
	for _, a := range b.Aggs {
		if a.Arg != nil {
			each(a.Arg)
		}
	}
}

// stmtCache caches parsed view-definition ASTs keyed by definition text.
// The builder re-parses view bodies on every reference (SQL views inline
// during QGM build; XNF views re-evaluate per reference), which made view
// expansion pay the lexer+parser on the hot path. Parsed statements are
// read-only during building, so one AST serves all sessions. Keying by the
// definition text itself makes entries immune to DROP/CREATE VIEW churn —
// a redefined view simply misses to a new key.
type stmtCache struct {
	mu  sync.Mutex
	m   map[string]parser.Statement
	cap int
}

func newStmtCache(capacity int) *stmtCache {
	return &stmtCache{m: map[string]parser.Statement{}, cap: capacity}
}

// parse returns the cached AST for src, parsing on miss.
func (sc *stmtCache) parse(src string) (parser.Statement, error) {
	sc.mu.Lock()
	if st, ok := sc.m[src]; ok {
		sc.mu.Unlock()
		return st, nil
	}
	sc.mu.Unlock()
	st, err := parser.ParseOne(src)
	if err != nil {
		return nil, err
	}
	sc.mu.Lock()
	if len(sc.m) >= sc.cap {
		// Simple full reset: view sets are small; precision is not worth
		// LRU bookkeeping here.
		sc.m = map[string]parser.Statement{}
	}
	sc.m[src] = st
	sc.mu.Unlock()
	return st, nil
}
