package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"sqlxnf/internal/optimizer"
)

// parallelFixture loads a table and fakes a big live row count so the DOP
// decision (serial below ~10k estimated rows) goes parallel while the test
// stays fast. Estimates steer plan choice only; results come from the data.
func parallelFixture(t *testing.T, e *Engine) *Session {
	t.Helper()
	s := e.Session()
	s.MustExec("CREATE TABLE P (id INT PRIMARY KEY, v INT, g INT)")
	for i := 0; i < 400; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO P VALUES (%d, %d, %d)", i, i%100, i%7))
	}
	tbl, err := e.Catalog().Table("P")
	if err != nil {
		t.Fatal(err)
	}
	tbl.SetRowCount(40_000)
	return s
}

func sortedStrings(rs *Result) []string {
	out := make([]string, len(rs.Rows))
	for i, r := range rs.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestParallelQueryEndToEnd drives a parallel plan through the full engine
// path — parameterized cache key, bind propagation into worker contexts,
// pooled Gather clones on the hit path — and checks results against a
// serial-only engine.
func TestParallelQueryEndToEnd(t *testing.T) {
	par := New(Options{Optimizer: optimizer.Options{MaxDOP: 4}})
	ser := New(Options{Optimizer: optimizer.Options{MaxDOP: -1}})
	ps := parallelFixture(t, par)
	ss := parallelFixture(t, ser)

	q := "SELECT id FROM P WHERE v < 37"
	ex := ps.MustExec("EXPLAIN " + q)
	if !strings.Contains(ex.Explain, "Gather (parallel=") {
		t.Fatalf("expected a parallel plan:\n%s", ex.Explain)
	}
	want := sortedStrings(ss.MustExec(q))
	// Cold compile, then two cache hits exercising the pooled Gather clone.
	for rep := 0; rep < 3; rep++ {
		got := sortedStrings(ps.MustExec(q))
		if len(got) != len(want) {
			t.Fatalf("rep %d: %d rows, want %d", rep, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rep %d: row %d differs: %s vs %s", rep, i, got[i], want[i])
			}
		}
	}
	st := par.PlanCacheStats()
	if st.Hits < 2 {
		t.Fatalf("parallel plan should serve from the cache: %+v", st)
	}

	// Aggregation with ORDER BY: parallel drain, deterministic output.
	aq := "SELECT g, COUNT(*), MIN(v), MAX(v) FROM P GROUP BY g ORDER BY g"
	pg := ps.MustExec(aq)
	sg := ss.MustExec(aq)
	if len(pg.Rows) != len(sg.Rows) {
		t.Fatalf("group rows = %d, want %d", len(pg.Rows), len(sg.Rows))
	}
	for i := range pg.Rows {
		if pg.Rows[i].String() != sg.Rows[i].String() {
			t.Fatalf("group row %d differs: %s vs %s", i, pg.Rows[i], sg.Rows[i])
		}
	}
}

// TestParallelQueryConcurrentSessions: several sessions running the same
// parallel shape concurrently through the shared plan cache (pooled clones)
// must each get exact results. Run under -race in CI.
func TestParallelQueryConcurrentSessions(t *testing.T) {
	e := New(Options{Optimizer: optimizer.Options{MaxDOP: 4}})
	s := parallelFixture(t, e)
	q := "SELECT id FROM P WHERE v < 25"
	want := len(s.MustExec(q).Rows)
	if want == 0 {
		t.Fatal("fixture returned no rows")
	}
	const sessions = 6
	errs := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		go func() {
			sess := e.Session()
			for i := 0; i < 10; i++ {
				r, err := sess.Exec(q)
				if err != nil {
					errs <- err
					return
				}
				if len(r.Rows) != want {
					errs <- fmt.Errorf("got %d rows, want %d", len(r.Rows), want)
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < sessions; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
