package engine

import (
	"encoding/binary"
	"fmt"

	"sqlxnf/internal/lock"
	"sqlxnf/internal/storage"
	"sqlxnf/internal/types"
	"sqlxnf/internal/wal"
)

// The checkpoint payload is a logical snapshot of the whole database:
// catalog objects plus every table's rows with their RIDs. Recovery loads
// the latest checkpoint and replays only the log suffix behind it, which
// bounds restart cost by write volume since the last checkpoint instead of
// total writes ever.

const ckptVersion = 1

// checkpoint executes the CHECKPOINT statement.
//
// Protocol: (1) exclusively lock every table — strict 2PL quiesces writers,
// since any transaction with undo-relevant records holds an exclusive table
// lock until it ends; the sweep re-lists until no new table appears.
// (2) Holding walMu, verify the table list is still complete, snapshot the
// catalog and heaps, and append the checkpoint record — no record of any
// session can interleave, so the snapshot is exactly the state at the
// checkpoint's LSN. (3) Force the record durable, then drop sealed WAL
// segments and the in-memory prefix behind it.
func (s *Session) checkpoint() (*Result, error) {
	e := s.eng
	if s.beganLogged {
		// The in-memory truncation below would discard this transaction's
		// own undo records, making a later ROLLBACK impossible.
		return nil, fmt.Errorf("engine: CHECKPOINT cannot run inside a transaction with uncommitted writes")
	}
	locked := map[string]bool{}
	for {
		for _, tn := range e.cat.TableNames() {
			if locked[tn] {
				continue
			}
			if err := s.lockTable(tn, lock.Exclusive); err != nil {
				return nil, err
			}
			locked[tn] = true
		}
		e.walMu.Lock()
		stable := true
		for _, tn := range e.cat.TableNames() {
			if !locked[tn] {
				stable = false
				break
			}
		}
		if stable {
			break
		}
		// A table appeared between the sweep and walMu (its CREATE may not
		// have logged yet). Release walMu — lock waits while holding it
		// would deadlock against committers — lock the newcomer, re-check.
		e.walMu.Unlock()
	}
	payload, err := e.encodeCheckpoint()
	if err != nil {
		e.walMu.Unlock()
		return nil, err
	}
	lsn := s.appendLogLocked(wal.Record{Tx: s.txID, Type: wal.RecCheckpoint, Payload: payload})
	e.walMu.Unlock()
	if e.flog != nil {
		if err := e.flog.Sync(lsn); err != nil {
			return nil, fmt.Errorf("engine: checkpoint not durable: %w", err)
		}
		if err := e.flog.TruncateBefore(lsn); err != nil {
			return nil, err
		}
	}
	// Keep the checkpoint record itself: SnapshotWAL output must still
	// describe the full database.
	e.log.Truncate(lsn - 1)
	return &Result{}, nil
}

// encodeCheckpoint serializes the logical snapshot. Caller holds walMu and
// exclusive locks on every cataloged table.
func (e *Engine) encodeCheckpoint() ([]byte, error) {
	buf := []byte{ckptVersion}
	e.mu.Lock()
	nextTx := e.nextTx
	e.mu.Unlock()
	buf = binary.AppendUvarint(buf, nextTx)
	names := e.cat.TableNames()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	type ixEnt struct {
		name, table string
		columns     []string
		unique      bool
	}
	var ixs []ixEnt
	for _, tn := range names {
		t, err := e.cat.Table(tn)
		if err != nil {
			return nil, fmt.Errorf("engine: checkpoint: %v", err)
		}
		buf = appendString(buf, t.Name)
		buf = appendString(buf, t.Family)
		analyzed := byte(0)
		if t.Stats() != nil {
			analyzed = 1
		}
		buf = append(buf, analyzed)
		buf = binary.AppendUvarint(buf, uint64(len(t.Schema)))
		for _, col := range t.Schema {
			buf = appendString(buf, col.Name)
			buf = binary.AppendUvarint(buf, uint64(col.Kind))
			nn := byte(0)
			if col.NotNull {
				nn = 1
			}
			buf = append(buf, nn)
		}
		var nRows uint64
		countAt := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // fixed u64 row count backpatch
		err = t.Heap.Scan(t.Tag, func(rid storage.RID, row types.Row) (bool, error) {
			buf = binary.AppendUvarint(buf, uint64(rid.Page))
			buf = binary.AppendUvarint(buf, uint64(rid.Slot))
			buf = row.Encode(buf)
			nRows++
			return false, nil
		})
		if err != nil {
			return nil, fmt.Errorf("engine: checkpoint scan of %s: %v", tn, err)
		}
		binary.LittleEndian.PutUint64(buf[countAt:], nRows)
		for _, ix := range t.Indexes {
			ixs = append(ixs, ixEnt{name: ix.Name, table: t.Name, columns: ix.Columns, unique: ix.Unique})
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(ixs)))
	for _, ix := range ixs {
		buf = appendString(buf, ix.name)
		buf = appendString(buf, ix.table)
		u := byte(0)
		if ix.unique {
			u = 1
		}
		buf = append(buf, u)
		buf = binary.AppendUvarint(buf, uint64(len(ix.columns)))
		for _, c := range ix.columns {
			buf = appendString(buf, c)
		}
	}
	vnames := e.cat.ViewNames()
	buf = binary.AppendUvarint(buf, uint64(len(vnames)))
	for _, vn := range vnames {
		v, err := e.cat.View(vn)
		if err != nil {
			return nil, fmt.Errorf("engine: checkpoint: %v", err)
		}
		buf = appendString(buf, v.Name)
		buf = appendString(buf, v.Definition)
		x := byte(0)
		if v.XNF {
			x = 1
		}
		buf = append(buf, x)
	}
	return buf, nil
}

// ckptImage is a decoded checkpoint payload.
type ckptImage struct {
	nextTx uint64
	tables []ckptTable
	ixs    []ckptIndex
	views  []ckptView
}

type ckptRow struct {
	rid storage.RID
	row types.Row
}

type ckptTable struct {
	name, family string
	analyzed     bool
	schema       types.Schema
	rows         []ckptRow
}

type ckptIndex struct {
	name, table string
	columns     []string
	unique      bool
}

type ckptView struct {
	name, def string
	xnf       bool
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeCheckpoint parses a checkpoint payload without touching engine
// state, so a corrupt payload can fall back to an earlier checkpoint.
func decodeCheckpoint(data []byte) (*ckptImage, error) {
	if len(data) == 0 || data[0] != ckptVersion {
		return nil, fmt.Errorf("engine: unsupported checkpoint payload")
	}
	pos := 1
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("engine: corrupt checkpoint at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	readString := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		if n > uint64(len(data)-pos) {
			return "", fmt.Errorf("engine: corrupt checkpoint string at offset %d", pos)
		}
		out := string(data[pos : pos+int(n)])
		pos += int(n)
		return out, nil
	}
	img := &ckptImage{}
	var err error
	if img.nextTx, err = readUvarint(); err != nil {
		return nil, err
	}
	nTables, err := readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTables; i++ {
		var t ckptTable
		if t.name, err = readString(); err != nil {
			return nil, err
		}
		if t.family, err = readString(); err != nil {
			return nil, err
		}
		if pos >= len(data) {
			return nil, fmt.Errorf("engine: corrupt checkpoint table %s", t.name)
		}
		t.analyzed = data[pos] == 1
		pos++
		nCols, err := readUvarint()
		if err != nil {
			return nil, err
		}
		for c := uint64(0); c < nCols; c++ {
			var col types.Column
			if col.Name, err = readString(); err != nil {
				return nil, err
			}
			kind, err := readUvarint()
			if err != nil {
				return nil, err
			}
			col.Kind = types.Kind(kind)
			if pos >= len(data) {
				return nil, fmt.Errorf("engine: corrupt checkpoint column %s.%s", t.name, col.Name)
			}
			col.NotNull = data[pos] == 1
			pos++
			t.schema = append(t.schema, col)
		}
		if len(data)-pos < 8 {
			return nil, fmt.Errorf("engine: corrupt checkpoint row count for %s", t.name)
		}
		nRows := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		for r := uint64(0); r < nRows; r++ {
			page, err := readUvarint()
			if err != nil {
				return nil, err
			}
			slot, err := readUvarint()
			if err != nil {
				return nil, err
			}
			row, used, err := types.DecodeRow(data[pos:])
			if err != nil {
				return nil, fmt.Errorf("engine: corrupt checkpoint row of %s: %v", t.name, err)
			}
			pos += used
			t.rows = append(t.rows, ckptRow{
				rid: storage.RID{Page: storage.PageID(page), Slot: uint16(slot)},
				row: row,
			})
		}
		img.tables = append(img.tables, t)
	}
	nIx, err := readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nIx; i++ {
		var ix ckptIndex
		if ix.name, err = readString(); err != nil {
			return nil, err
		}
		if ix.table, err = readString(); err != nil {
			return nil, err
		}
		if pos >= len(data) {
			return nil, fmt.Errorf("engine: corrupt checkpoint index %s", ix.name)
		}
		ix.unique = data[pos] == 1
		pos++
		nCols, err := readUvarint()
		if err != nil {
			return nil, err
		}
		for c := uint64(0); c < nCols; c++ {
			col, err := readString()
			if err != nil {
				return nil, err
			}
			ix.columns = append(ix.columns, col)
		}
		img.ixs = append(img.ixs, ix)
	}
	nViews, err := readUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nViews; i++ {
		var v ckptView
		if v.name, err = readString(); err != nil {
			return nil, err
		}
		if v.def, err = readString(); err != nil {
			return nil, err
		}
		if pos >= len(data) {
			return nil, fmt.Errorf("engine: corrupt checkpoint view %s", v.name)
		}
		v.xnf = data[pos] == 1
		pos++
		img.views = append(img.views, v)
	}
	return img, nil
}
