package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sqlxnf/internal/faultinj"
	"sqlxnf/internal/storage"
	"sqlxnf/internal/types"
	"sqlxnf/internal/wal"
)

// The crash harness (`make crash`) runs a deterministic workload against a
// durable engine, simulates a kill at every statement boundary and at
// hundreds of torn-write positions inside each statement's log suffix,
// recovers each crash image, and differentially verifies the recovered
// database against an oracle tracking exactly the acknowledged commits.
// The invariant: an acknowledged commit survives any crash; an
// unacknowledged statement disappears entirely.

// crashOpts is the durable engine configuration under test: per-commit
// fsync (so every acked statement is on disk), tiny segments (so the
// workload spans many rotations), auto-checkpoint off (the workload issues
// explicit CHECKPOINTs at known points).
func crashOpts(dir string) Options {
	o := DefaultOptions()
	o.DataDir = dir
	o.Sync = wal.SyncAlways
	o.WALSegmentBytes = 2048
	o.CheckpointBytes = -1
	return o
}

// crashWorkload is the acked-statement sequence. Single-statement
// autocommits and single-Exec BEGIN…COMMIT scripts only, so each element is
// one atomic acknowledgement whose last log record is its commit. It mixes
// DML on a keyed table, duplicate rows on an unkeyed table (RID-replay
// coverage), DDL, views, ANALYZE, explicit transactions, and CHECKPOINTs.
func crashWorkload() []string {
	stmts := []string{
		`CREATE TABLE A (id INT PRIMARY KEY, v VARCHAR)`,
		`CREATE TABLE B (id INT, a_id INT, w VARCHAR)`,
		`CREATE INDEX b_aid ON B (a_id)`,
	}
	for i := 0; i < 12; i++ {
		stmts = append(stmts,
			fmt.Sprintf(`INSERT INTO A VALUES (%d, 'a-%d')`, i, i),
			fmt.Sprintf(`INSERT INTO B VALUES (%d, %d, 'dup')`, i%3, i),
		)
	}
	stmts = append(stmts,
		`INSERT INTO B VALUES (0, 0, 'dup')`, // exact duplicate of an existing row
		`INSERT INTO B VALUES (0, 0, 'dup')`,
		`CHECKPOINT`,
		`UPDATE A SET v = 'patched' WHERE id < 4`,
		`DELETE FROM B WHERE id = 1`,
		`ANALYZE A`,
		`CREATE TABLE C (x INT)`,
		`INSERT INTO C VALUES (1)`,
		`BEGIN; INSERT INTO A VALUES (100, 'tx'); UPDATE A SET v = 'tx2' WHERE id = 100; COMMIT`,
		`BEGIN; INSERT INTO A VALUES (101, 'doomed'); ROLLBACK`,
		`DROP TABLE C`,
		`CREATE VIEW AV AS SELECT id, v FROM A WHERE id < 50`,
		`CHECKPOINT`,
	)
	for i := 0; i < 10; i++ {
		stmts = append(stmts,
			fmt.Sprintf(`INSERT INTO A VALUES (%d, 'late-%d')`, 200+i, i),
			fmt.Sprintf(`UPDATE B SET w = 'w-%d' WHERE a_id = %d`, i, i),
		)
	}
	stmts = append(stmts,
		`DELETE FROM B WHERE id = 0 AND a_id = 0`, // deletes one duplicate
		`ANALYZE B`,
		`CHECKPOINT`,
		`INSERT INTO A VALUES (300, 'after-last-ckpt')`,
		`DELETE FROM A WHERE id = 5`,
		`UPDATE A SET v = 'final' WHERE id = 300`,
	)
	return stmts
}

// fingerprint renders the engine's complete logical state — catalog, table
// contents (order-independent), indexes, views — for differential
// comparison. Statistics and transaction counters are excluded: they are
// recomputed at recovery, not replayed bit-for-bit.
func fingerprint(t *testing.T, e *Engine) string {
	t.Helper()
	var sb strings.Builder
	for _, tn := range e.cat.TableNames() {
		tab, err := e.cat.Table(tn)
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		fmt.Fprintf(&sb, "table %s family=%q cols=", tn, tab.Family)
		for _, c := range tab.Schema {
			fmt.Fprintf(&sb, "%s:%d:%v,", c.Name, c.Kind, c.NotNull)
		}
		sb.WriteString("\n")
		var rows []string
		err = tab.Heap.Scan(tab.Tag, func(_ storage.RID, row types.Row) (bool, error) {
			rows = append(rows, fmt.Sprint(row))
			return false, nil
		})
		if err != nil {
			t.Fatalf("fingerprint scan of %s: %v", tn, err)
		}
		sort.Strings(rows)
		for _, r := range rows {
			sb.WriteString("  ")
			sb.WriteString(r)
			sb.WriteString("\n")
		}
		ixNames := make([]string, 0, len(tab.Indexes))
		for _, ix := range tab.Indexes {
			ixNames = append(ixNames, fmt.Sprintf("index %s on %s (%s) unique=%v",
				ix.Name, tn, strings.Join(ix.Columns, ","), ix.Unique))
		}
		sort.Strings(ixNames)
		for _, n := range ixNames {
			sb.WriteString(n)
			sb.WriteString("\n")
		}
	}
	for _, vn := range e.cat.ViewNames() {
		v, err := e.cat.View(vn)
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		fmt.Fprintf(&sb, "view %s xnf=%v def=%q\n", v.Name, v.XNF, v.Definition)
	}
	return sb.String()
}

// snapshotDir reads every WAL segment in dir into memory.
func snapshotDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	img := map[string][]byte{}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		img[e.Name()] = data
	}
	return img
}

// writeImage materializes a crash image into dir (emptied first).
func writeImage(t *testing.T, dir string, img map[string][]byte) {
	t.Helper()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range img {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func cloneImage(img map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(img))
	for k, v := range img {
		out[k] = v
	}
	return out
}

func newestFile(t *testing.T, img map[string][]byte) string {
	t.Helper()
	names := make([]string, 0, len(img))
	for k := range img {
		names = append(names, k)
	}
	if len(names) == 0 {
		t.Fatal("crash image has no segments")
	}
	sort.Strings(names)
	return names[len(names)-1]
}

// crashState is everything the harness records while driving the workload.
type crashState struct {
	images  []map[string][]byte // images[i]: disk after statements 0..i-1 acked
	oracles []string            // oracles[i]: fingerprint after statements 0..i-1
	memLens []int               // twin's in-memory log length at each point (replay bound)
	stmts   []string
}

// driveWorkload executes the workload on a durable engine, snapshotting the
// log directory and an in-memory oracle twin after every acknowledgement.
func driveWorkload(t *testing.T, dir string) *crashState {
	t.Helper()
	eng, err := Open(crashOpts(dir))
	if err != nil {
		t.Fatalf("open durable engine: %v", err)
	}
	defer eng.Close()
	twinOpts := DefaultOptions()
	twin := New(twinOpts)
	s, ts := eng.Session(), twin.Session()

	st := &crashState{stmts: crashWorkload()}
	record := func() {
		st.images = append(st.images, snapshotDir(t, dir))
		st.oracles = append(st.oracles, fingerprint(t, twin))
		st.memLens = append(st.memLens, twin.log.Len())
	}
	record()
	var ckptShrank bool
	for _, stmt := range st.stmts {
		preBytes := eng.WALStats().File.Bytes
		if _, err := s.Exec(stmt); err != nil {
			t.Fatalf("workload %q: %v", stmt, err)
		}
		if _, err := ts.Exec(stmt); err != nil {
			t.Fatalf("twin %q: %v", stmt, err)
		}
		if stmt == "CHECKPOINT" && eng.WALStats().File.Bytes < preBytes {
			ckptShrank = true
		}
		record()
	}
	if got, want := fingerprint(t, eng), st.oracles[len(st.oracles)-1]; got != want {
		t.Fatalf("durable and in-memory engines diverged without any crash:\n%s\nvs\n%s", got, want)
	}
	if !ckptShrank {
		t.Fatal("no CHECKPOINT shrank the durable log")
	}
	return st
}

// recoverAndVerify opens the crash image in dir and checks the recovered
// engine against the expected oracle fingerprint, plus structural health:
// no locks held, replay bounded by the oracle's live log, and the engine
// accepting new work.
func recoverAndVerify(t *testing.T, dir, wantFP string, maxReplay int, label string) {
	t.Helper()
	eng, err := Open(crashOpts(dir))
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer eng.Close()
	if got := fingerprint(t, eng); got != wantFP {
		t.Fatalf("%s: recovered state diverges from oracle\n--- recovered ---\n%s--- oracle ---\n%s", label, got, wantFP)
	}
	if held := eng.Locks().TotalHeld(); held != 0 {
		t.Fatalf("%s: %d locks still held after recovery", label, held)
	}
	info := eng.RecoveryInfo()
	if maxReplay >= 0 && info.Replayed > maxReplay {
		t.Fatalf("%s: replayed %d records, oracle's live log holds only %d — recovery not bounded by the last checkpoint", label, info.Replayed, maxReplay)
	}
}

// TestCrashRecovery is the chaos harness entry point: boundary kills, torn
// tails at sub-record granularity, and mid-checkpoint kills, each recovered
// and differentially verified. Run via `make crash`.
func TestCrashRecovery(t *testing.T) {
	workDir := t.TempDir()
	liveDir := filepath.Join(workDir, "live")
	crashDir := filepath.Join(workDir, "crash")
	st := driveWorkload(t, liveDir)

	var crashes, torn int
	// Phase 1: kill at every statement boundary (post-fsync, post-ack).
	for i, img := range st.images {
		writeImage(t, crashDir, img)
		recoverAndVerify(t, crashDir, st.oracles[i], st.memLens[i],
			fmt.Sprintf("boundary %d (%s)", i, stmtAt(st, i)))
		crashes++
	}

	// Phase 2: torn tails. For each transition i → i+1 the bytes fsynced at
	// point i are immutable (per-commit fsync), so a real crash during
	// statement i+1 can only tear the appended suffix. Cut it at several
	// offsets, including mid-record: every cut must recover to oracle i —
	// the statement was never acknowledged.
	for i := 0; i+1 < len(st.images); i++ {
		prev, next := st.images[i], st.images[i+1]
		deleted := false
		for name := range prev {
			if _, ok := next[name]; !ok {
				deleted = true
				break
			}
		}
		newest := newestFile(t, next)
		nb := next[newest]
		label := fmt.Sprintf("torn after %d (%s)", i, stmtAt(st, i+1))

		if deleted {
			// A CHECKPOINT truncated history: the valid mid-crash images are
			// pre-truncation — everything from point i plus the checkpoint's
			// fresh segment torn anywhere. CHECKPOINT changes no data, so
			// every such image must recover to oracle i.
			base := cloneImage(prev)
			for _, c := range cutPoints(0, len(nb)) {
				base[newest] = nb[:c]
				writeImage(t, crashDir, base)
				recoverAndVerify(t, crashDir, st.oracles[i], -1, label)
				crashes++
				if c < len(nb) {
					torn++
				}
			}
			continue
		}

		floor := len(prev[newest]) // 0 when the statement rotated to a new segment
		if floor > 0 && !bytes.Equal(nb[:floor], prev[newest]) {
			t.Fatalf("%s: fsynced prefix of %s changed — durable bytes must be immutable", label, newest)
		}
		if len(nb) == floor {
			continue // read-only statement, nothing appended
		}
		base := cloneImage(next)
		for _, c := range cutPoints(floor, len(nb)) {
			base[newest] = nb[:c]
			writeImage(t, crashDir, base)
			want, maxReplay := st.oracles[i], st.memLens[i]
			if c == len(nb) {
				want, maxReplay = st.oracles[i+1], st.memLens[i+1]
			} else {
				torn++
			}
			recoverAndVerify(t, crashDir, want, maxReplay, fmt.Sprintf("%s cut=%d", label, c))
			crashes++
		}
	}

	const wantCrashes, wantTorn = 500, 100
	if crashes < wantCrashes || torn < wantTorn {
		t.Fatalf("harness coverage too thin: %d crashes (%d torn), want ≥%d (≥%d torn)", crashes, torn, wantCrashes, wantTorn)
	}
	t.Logf("crash harness: %d crash images recovered (%d torn tails), 0 durability violations", crashes, torn)
}

func stmtAt(st *crashState, i int) string {
	if i == 0 {
		return "<empty>"
	}
	s := st.stmts[i-1]
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	return s
}

// cutPoints samples torn-write offsets in (floor, size]: the first byte of
// the suffix, a mid-record tear, a cut just shy of complete, plus evenly
// spaced interior points and the complete suffix itself.
func cutPoints(floor, size int) []int {
	span := size - floor
	set := map[int]bool{}
	for _, c := range []int{floor + 1, floor + span/6, floor + span/4, floor + span/3,
		floor + span/2, floor + 2*span/3, floor + 5*span/6, size - 1, size} {
		if c > floor && c <= size {
			set[c] = true
		}
	}
	cuts := make([]int, 0, len(set))
	for c := range set {
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	return cuts
}

// TestCrashFsyncFaults drives the workload with an injected fsync failure
// at a shifting position: the engine must refuse to acknowledge the commit
// whose force failed, and the statements acknowledged before it must
// survive recovery of whatever reached the disk.
func TestCrashFsyncFaults(t *testing.T) {
	stmts := crashWorkload()
	for _, failAt := range []int{0, 3, 9, 17, 26, 41, 58} {
		inj := faultinj.New()
		dir := t.TempDir()
		opts := crashOpts(dir)
		opts.FaultInjector = inj
		eng, err := Open(opts)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		twin := New(DefaultOptions())
		s, ts := eng.Session(), twin.Session()
		inj.Arm(faultinj.Fault{Point: faultinj.WALFsync, After: failAt, Once: true})

		acked := 0
		var oracle string
		for _, stmt := range stmts {
			if _, err := s.Exec(stmt); err != nil {
				if !strings.Contains(err.Error(), "injected") {
					t.Fatalf("failAt=%d %q: unexpected error %v", failAt, stmt, err)
				}
				break // the commit was not acknowledged
			}
			if _, err := ts.Exec(stmt); err != nil {
				t.Fatalf("twin %q: %v", stmt, err)
			}
			acked++
			oracle = fingerprint(t, twin)
		}
		if acked == len(stmts) {
			t.Fatalf("failAt=%d: injected fsync fault never surfaced", failAt)
		}
		eng.Close() // the "crash": abandon the wounded engine
		recovered, err := Open(crashOpts(dir))
		if err != nil {
			t.Fatalf("failAt=%d: recovery: %v", failAt, err)
		}
		got := fingerprint(t, recovered)
		recovered.Close()
		// The unacknowledged statement may or may not have reached the OS
		// buffer before the failed force; either way every acked statement
		// must be present. Compute the acceptable post-crash states: exactly
		// the acked prefix, or acked prefix + the unacked statement's
		// effects (fsync failed after the write reached the OS).
		if got != oracle {
			if _, err := ts.Exec(stmts[acked]); err != nil {
				t.Fatalf("twin extension: %v", err)
			}
			withUnacked := fingerprint(t, twin)
			if got != withUnacked {
				t.Fatalf("failAt=%d: recovered state matches neither the acked prefix nor prefix+1:\n%s", failAt, got)
			}
		}
	}
}

// TestCrashOpenFault verifies the wal.open probe surfaces cleanly.
func TestCrashOpenFault(t *testing.T) {
	inj := faultinj.New()
	inj.Arm(faultinj.Fault{Point: faultinj.WALOpen, Once: true})
	opts := crashOpts(t.TempDir())
	opts.FaultInjector = inj
	if _, err := Open(opts); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("expected injected open failure, got %v", err)
	}
}

// TestCrashTruncateFault exercises the wal.truncate probe: a failure that
// lands after the checkpoint record is appended and forced durable but
// before (or while) the sealed segments behind it are dropped. The
// CHECKPOINT statement reports the error, the stale segments stay on disk,
// and a crash at that exact point must recover cleanly — the recovered
// state is the acked prefix, the surviving old segments are harmless, and
// the next clean CHECKPOINT finishes the interrupted truncation.
func TestCrashTruncateFault(t *testing.T) {
	inj := faultinj.New()
	dir := t.TempDir()
	opts := crashOpts(dir)
	opts.FaultInjector = inj
	eng, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	twin := New(DefaultOptions())
	s, ts := eng.Session(), twin.Session()

	run := func(stmt string) {
		t.Helper()
		if _, err := s.Exec(stmt); err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		if _, err := ts.Exec(stmt); err != nil {
			t.Fatalf("twin %q: %v", stmt, err)
		}
	}
	run(`CREATE TABLE A (id INT PRIMARY KEY, v VARCHAR)`)
	for i := 0; i < 60; i++ { // span several 2KB segments
		run(fmt.Sprintf(`INSERT INTO A VALUES (%d, 'pre-%d-%s')`, i, i,
			strings.Repeat("x", 64)))
	}
	segsBefore := len(snapshotDir(t, dir))
	if segsBefore < 3 {
		t.Fatalf("workload too small to rotate segments: %d on disk", segsBefore)
	}

	inj.Arm(faultinj.Fault{Point: faultinj.WALTruncate, Once: true})
	if _, err := s.Exec(`CHECKPOINT`); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("CHECKPOINT with a truncation fault returned %v", err)
	}
	// The checkpoint record is durable but no segment was dropped.
	if got := len(snapshotDir(t, dir)); got < segsBefore {
		t.Fatalf("failed truncation still dropped segments: %d -> %d", segsBefore, got)
	}
	// The engine stays usable after the failed CHECKPOINT.
	run(`INSERT INTO A VALUES (100, 'post-fault')`)
	oracle := fingerprint(t, twin)

	// Crash exactly inside the checkpoint/truncate window and recover.
	eng.Close()
	rec, err := Open(crashOpts(dir))
	if err != nil {
		t.Fatalf("recovery after truncate fault: %v", err)
	}
	if got := fingerprint(t, rec); got != oracle {
		t.Fatalf("recovered state diverged from acked prefix:\n got: %s\nwant: %s", got, oracle)
	}
	// A clean CHECKPOINT on the recovered engine completes the truncation
	// the fault interrupted: the pre-checkpoint segments finally drop.
	rs := rec.Session()
	if _, err := rs.Exec(`CHECKPOINT`); err != nil {
		t.Fatalf("follow-up CHECKPOINT: %v", err)
	}
	if got := len(snapshotDir(t, dir)); got >= segsBefore {
		t.Fatalf("follow-up checkpoint dropped nothing: %d segments, had %d", got, segsBefore)
	}
	if _, err := rs.Exec(`INSERT INTO A VALUES (101, 'post-ckpt')`); err != nil {
		t.Fatalf("insert after follow-up checkpoint: %v", err)
	}
	rec.Close()

	// One more reopen proves the truncated log still recovers everything.
	if _, err := ts.Exec(`INSERT INTO A VALUES (101, 'post-ckpt')`); err != nil {
		t.Fatalf("twin: %v", err)
	}
	final, err := Open(crashOpts(dir))
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer final.Close()
	if got, want := fingerprint(t, final), fingerprint(t, twin); got != want {
		t.Fatalf("state after truncation + reopen diverged:\n got: %s\nwant: %s", got, want)
	}
}
