// Package rewrite implements the query rewrite phase of the compilation
// pipeline (paper §4.3, Fig. 8): QGM-to-QGM transformations applied before
// plan optimization. The transformations mirror Starburst's rule set the
// paper leans on — merging of views with queries (select merge), constant
// folding, and trivial predicate simplification. The XNF semantic rewrite
// (XNF operator → plain SQL operators) lives in the xnf package; this
// package cleans up the boxes it produces, exactly as the paper describes:
// "Any optimization of the resulting QGM can be deferred to the query
// rewrite step, which takes care of merging query blocks or other
// simplifications."
package rewrite

import (
	"sqlxnf/internal/qgm"
	"sqlxnf/internal/types"
)

// Options toggles individual rules (benches ablate them). The zero value
// enables every rule.
type Options struct {
	NoMergeSelects  bool
	NoFoldConstants bool
}

// DefaultOptions enables every rule.
func DefaultOptions() Options { return Options{} }

// Rewrite applies the enabled rules to the box tree until fixpoint.
func Rewrite(box *qgm.Box, opt Options) *qgm.Box {
	for i := 0; i < 16; i++ { // fixpoint with a safety bound
		changed := false
		if !opt.NoMergeSelects {
			changed = mergeSelects(box) || changed
		}
		if !opt.NoFoldConstants {
			changed = foldBox(box, map[*qgm.Box]bool{}) || changed
		}
		if !changed {
			return box
		}
	}
	return box
}

// mergeSelects inlines mergeable child select boxes into their parents:
// a quantifier over a SELECT box with no distinct/order/limit/parameters
// is replaced by that box's quantifiers, with column references remapped
// through its head. This is how stored views vanish into the query.
func mergeSelects(box *qgm.Box) bool {
	changed := false
	seen := map[*qgm.Box]bool{}
	var walk func(b *qgm.Box)
	walk = func(b *qgm.Box) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, q := range b.Quants {
			walk(q.Input)
		}
		for _, in := range b.Inputs {
			walk(in)
		}
		if b.Kind != qgm.KindSelect {
			return
		}
		for qi := 0; qi < len(b.Quants); qi++ {
			child := b.Quants[qi].Input
			if !mergeable(child) {
				continue
			}
			inlineQuant(b, qi, child)
			changed = true
			qi-- // re-examine the same position (now the child's first quant)
		}
	}
	walk(box)
	return changed
}

// mergeable reports whether a box can be inlined into its parent.
func mergeable(b *qgm.Box) bool {
	return b.Kind == qgm.KindSelect &&
		!b.Distinct &&
		len(b.OrderBy) == 0 &&
		b.Limit == nil &&
		b.NumParams == 0 &&
		len(b.Quants) > 0
}

// inlineQuant splices child's quantifiers into parent at position qi,
// rewriting all parent expressions.
func inlineQuant(parent *qgm.Box, qi int, child *qgm.Box) {
	nChild := len(child.Quants)
	// New quantifier slice: before + child's + after.
	quants := make([]*qgm.Quantifier, 0, len(parent.Quants)-1+nChild)
	quants = append(quants, parent.Quants[:qi]...)
	quants = append(quants, child.Quants...)
	quants = append(quants, parent.Quants[qi+1:]...)

	// remap rewrites a parent expression: references to quant qi route
	// through child's head (whose ColRefs shift by qi); references beyond
	// qi shift by nChild-1.
	remap := func(e qgm.Expr) qgm.Expr {
		return qgm.MapColRefs(e, func(c *qgm.ColRef) qgm.Expr {
			switch {
			case c.Quant < qi:
				return c
			case c.Quant == qi:
				h := child.Head[c.Col].Expr
				// Shift the child expression's quant indexes by qi.
				return qgm.MapColRefs(h, func(cc *qgm.ColRef) qgm.Expr {
					return &qgm.ColRef{Quant: cc.Quant + qi, Col: cc.Col, Name: cc.Name}
				})
			default:
				return &qgm.ColRef{Quant: c.Quant + nChild - 1, Col: c.Col, Name: c.Name}
			}
		})
	}

	for i := range parent.Head {
		parent.Head[i].Expr = remap(parent.Head[i].Expr)
	}
	parent.Pred = remap(parent.Pred)
	for i := range parent.GroupBy {
		parent.GroupBy[i] = remap(parent.GroupBy[i])
	}
	for i := range parent.Aggs {
		if parent.Aggs[i].Arg != nil {
			parent.Aggs[i].Arg = remap(parent.Aggs[i].Arg)
		}
	}
	// Child predicate: shift its quant indexes by qi and conjoin.
	if child.Pred != nil {
		shifted := qgm.MapColRefs(child.Pred, func(c *qgm.ColRef) qgm.Expr {
			return &qgm.ColRef{Quant: c.Quant + qi, Col: c.Col, Name: c.Name}
		})
		parent.Pred = qgm.Conjoin([]qgm.Expr{parent.Pred, shifted})
	}
	parent.Quants = quants
}

// foldBox folds constant subexpressions everywhere in the tree.
func foldBox(b *qgm.Box, seen map[*qgm.Box]bool) bool {
	if b == nil || seen[b] {
		return false
	}
	seen[b] = true
	changed := false
	fold := func(e qgm.Expr) qgm.Expr {
		out, c := foldExpr(e)
		changed = changed || c
		return out
	}
	if b.Pred != nil {
		b.Pred = fold(b.Pred)
	}
	for i := range b.Head {
		b.Head[i].Expr = fold(b.Head[i].Expr)
	}
	for _, q := range b.Quants {
		changed = foldBox(q.Input, seen) || changed
	}
	for _, in := range b.Inputs {
		changed = foldBox(in, seen) || changed
	}
	return changed
}

// foldableConst narrows to constants that may fold at compile time.
// Parameter-slot constants (Const.Param > 0) must not fold: their compile
// value is just the first binding, and folding it into the plan template
// would freeze that binding for every later execution of the cached plan.
func foldableConst(e qgm.Expr) (*qgm.Const, bool) {
	c, ok := e.(*qgm.Const)
	if !ok || c.Param > 0 {
		return nil, false
	}
	return c, true
}

// foldExpr evaluates constant subtrees. It never folds across errors
// (division by zero etc. stay for runtime).
func foldExpr(e qgm.Expr) (qgm.Expr, bool) {
	switch x := e.(type) {
	case *qgm.Binary:
		l, lc := foldExpr(x.L)
		r, rc := foldExpr(x.R)
		out := &qgm.Binary{Op: x.Op, L: l, R: r}
		lcst, lok := foldableConst(l)
		rcst, rok := foldableConst(r)
		if lok && rok {
			if v, ok := evalConstBinary(x.Op, lcst.Val, rcst.Val); ok {
				return &qgm.Const{Val: v}, true
			}
		}
		// TRUE AND p → p; FALSE OR p → p.
		if lok && lcst.Val.Kind() == types.KindBool {
			if x.Op == "AND" && lcst.Val.Bool() {
				return r, true
			}
			if x.Op == "OR" && !lcst.Val.Bool() {
				return r, true
			}
		}
		if rok && rcst.Val.Kind() == types.KindBool {
			if x.Op == "AND" && rcst.Val.Bool() {
				return l, true
			}
			if x.Op == "OR" && !rcst.Val.Bool() {
				return l, true
			}
		}
		return out, lc || rc
	case *qgm.Unary:
		inner, c := foldExpr(x.E)
		if cst, ok := foldableConst(inner); ok {
			switch x.Op {
			case "-":
				if v, err := types.Neg(cst.Val); err == nil {
					return &qgm.Const{Val: v}, true
				}
			case "NOT":
				if cst.Val.Kind() == types.KindBool {
					return &qgm.Const{Val: types.NewBool(!cst.Val.Bool())}, true
				}
			}
		}
		return &qgm.Unary{Op: x.Op, E: inner}, c
	case *qgm.IsNull:
		inner, c := foldExpr(x.E)
		if cst, ok := foldableConst(inner); ok {
			r := cst.Val.IsNull()
			if x.Negate {
				r = !r
			}
			return &qgm.Const{Val: types.NewBool(r)}, true
		}
		return &qgm.IsNull{E: inner, Negate: x.Negate}, c
	case *qgm.InList:
		inner, c := foldExpr(x.E)
		list := make([]qgm.Expr, len(x.List))
		for i, l := range x.List {
			var lc bool
			list[i], lc = foldExpr(l)
			c = c || lc
		}
		return &qgm.InList{E: inner, List: list, Negate: x.Negate}, c
	default:
		return e, false
	}
}

func evalConstBinary(op string, a, b types.Value) (types.Value, bool) {
	switch op {
	case "AND", "OR":
		ta, tb := triOfVal(a), triOfVal(b)
		if op == "AND" {
			return ta.And(tb).Value(), true
		}
		return ta.Or(tb).Value(), true
	case "=", "<>", "<", "<=", ">", ">=":
		t, err := types.CompareTri(op, a, b)
		if err != nil {
			return types.Null(), false
		}
		return t.Value(), true
	case "LIKE":
		return types.Null(), false // left to runtime
	default:
		v, err := types.Arith(op, a, b)
		if err != nil {
			return types.Null(), false
		}
		return v, true
	}
}

func triOfVal(v types.Value) types.Tri {
	if v.IsNull() {
		return types.Unknown
	}
	if v.Kind() == types.KindBool {
		return types.TriOf(v.Bool())
	}
	return types.Unknown
}
