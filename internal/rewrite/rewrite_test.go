package rewrite

import (
	"strings"
	"testing"

	"sqlxnf/internal/catalog"
	"sqlxnf/internal/parser"
	"sqlxnf/internal/qgm"
	"sqlxnf/internal/storage"
	"sqlxnf/internal/types"
)

func buildBox(t *testing.T, ddlTables map[string]types.Schema, sql string) (*qgm.Box, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New(storage.NewBufferPool(storage.NewDisk(), 16))
	for name, schema := range ddlTables {
		if _, err := cat.CreateTable(name, schema, ""); err != nil {
			t.Fatal(err)
		}
	}
	st, err := parser.ParseOne(sql)
	if err != nil {
		t.Fatal(err)
	}
	box, err := qgm.NewBuilder(cat, nil).BuildSelect(st.(*parser.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return box, cat
}

func deptEmp() map[string]types.Schema {
	return map[string]types.Schema{
		"DEPT": {{Name: "dno", Kind: types.KindInt}, {Name: "loc", Kind: types.KindString}},
		"EMP":  {{Name: "eno", Kind: types.KindInt}, {Name: "edno", Kind: types.KindInt}, {Name: "sal", Kind: types.KindFloat}},
	}
}

func TestMergeSelectsInlinesDerivedTable(t *testing.T) {
	box, _ := buildBox(t, deptEmp(),
		"SELECT d.dno FROM (SELECT dno FROM DEPT WHERE loc = 'NY') d WHERE d.dno > 1")
	before := countSelectBoxes(box)
	out := Rewrite(box, DefaultOptions())
	after := countSelectBoxes(out)
	if after >= before {
		t.Errorf("merge did not reduce select boxes: %d -> %d", before, after)
	}
	// The merged box ranges directly over the base table with the conjoined
	// predicate.
	if len(out.Quants) != 1 || out.Quants[0].Input.Kind != qgm.KindBase {
		t.Fatalf("merged shape: %s", out.Dump())
	}
	pred := out.Pred.String()
	if !strings.Contains(pred, "loc") || !strings.Contains(pred, "dno") {
		t.Errorf("merged predicate = %s", pred)
	}
}

func TestMergeSkipsDistinctAndLimit(t *testing.T) {
	box, _ := buildBox(t, deptEmp(),
		"SELECT d.dno FROM (SELECT DISTINCT dno FROM DEPT) d")
	out := Rewrite(box, DefaultOptions())
	if out.Quants[0].Input.Kind != qgm.KindSelect {
		t.Error("DISTINCT subquery must not merge")
	}
	box2, _ := buildBox(t, deptEmp(),
		"SELECT d.dno FROM (SELECT dno FROM DEPT LIMIT 3) d")
	out2 := Rewrite(box2, DefaultOptions())
	if out2.Quants[0].Input.Kind != qgm.KindSelect {
		t.Error("LIMIT subquery must not merge")
	}
}

func TestMergePreservesSemantics(t *testing.T) {
	// Expression head in the child: parent refs route through it.
	box, _ := buildBox(t, deptEmp(),
		"SELECT x.double FROM (SELECT sal * 2 AS double FROM EMP WHERE sal > 10) x WHERE x.double < 100")
	out := Rewrite(box, DefaultOptions())
	if len(out.Quants) != 1 || out.Quants[0].Input.Kind != qgm.KindBase {
		t.Fatalf("not merged: %s", out.Dump())
	}
	s := out.Pred.String()
	// x.double < 100 must have become (sal*2) < 100 over the base quant.
	if !strings.Contains(s, "* 2") {
		t.Errorf("pred after remap = %s", s)
	}
}

func TestConstantFolding(t *testing.T) {
	box, _ := buildBox(t, deptEmp(),
		"SELECT eno FROM EMP WHERE 1 + 1 = 2 AND sal > 2 * 3")
	out := Rewrite(box, DefaultOptions())
	s := out.Pred.String()
	// TRUE AND p → p; 2*3 → 6.
	if strings.Contains(s, "1 + 1") || strings.Contains(s, "2 * 3") {
		t.Errorf("folding missed: %s", s)
	}
	if !strings.Contains(s, "6") {
		t.Errorf("folded constant missing: %s", s)
	}
}

func TestFoldingKeepsRuntimeErrors(t *testing.T) {
	box, _ := buildBox(t, deptEmp(), "SELECT eno FROM EMP WHERE sal > 1 / 0")
	out := Rewrite(box, DefaultOptions())
	if !strings.Contains(out.Pred.String(), "/") {
		t.Error("division by zero must not fold away")
	}
}

func TestRewriteDisabledOptions(t *testing.T) {
	box, _ := buildBox(t, deptEmp(),
		"SELECT d.dno FROM (SELECT dno FROM DEPT) d WHERE 1 = 1")
	out := Rewrite(box, Options{NoMergeSelects: true, NoFoldConstants: true})
	if out.Quants[0].Input.Kind != qgm.KindSelect {
		t.Error("merge ran despite NoMergeSelects")
	}
	if !strings.Contains(out.Pred.String(), "1 = 1") {
		t.Error("folding ran despite NoFoldConstants")
	}
}

func countSelectBoxes(b *qgm.Box) int {
	seen := map[*qgm.Box]bool{}
	n := 0
	var walk func(*qgm.Box)
	walk = func(b *qgm.Box) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		if b.Kind == qgm.KindSelect {
			n++
		}
		for _, q := range b.Quants {
			walk(q.Input)
		}
	}
	walk(b)
	return n
}
