package xnf

import (
	"fmt"
	"strings"
	"sync/atomic"

	"sqlxnf/internal/qgm"
	"sqlxnf/internal/storage"
	"sqlxnf/internal/types"
)

// Evaluator materializes composite objects from XNF specs.
type Evaluator struct {
	host Host
	opts Options
	// Stats counts evaluator work for the benches.
	Stats EvalStats
}

// EvalStats counts evaluation work. Counters increment with atomic adds so
// concurrent workloads can read them race-free.
type EvalStats struct {
	NodeQueries     int64
	EdgeQueries     int64
	InlineEdges     int64 // edges resolved during topological extraction
	RecomputedNodes int64 // extra node derivations when CSE is off
	FixpointRounds  int64
}

// NewEvaluator returns an evaluator bound to a host.
func NewEvaluator(host Host, opts Options) *Evaluator {
	return &Evaluator{host: host, opts: opts}
}

// gnode is a candidate component table during evaluation.
type gnode struct {
	name      string
	schema    types.Schema
	rows      []types.Row
	rids      []storage.RID
	baseTable string
	colMap    []int
	alive     []bool
}

// gedge is a candidate relationship during evaluation.
type gedge struct {
	name       string
	parent     string
	child      string
	parentRole string
	childRole  string
	attrSchema types.Schema
	conns      []Conn
	alive      []bool
	fkParent   string
	fkChild    string
	linkTable  string
	linkPCol   string
	linkCCol   string
	linkPKey   string
	linkCKey   string
}

// egraph is the candidate instance graph of one composition level. Node and
// edge lookups are by case-folded name through maps built as the graph grows
// — restriction and path evaluation resolve names per candidate tuple, so
// the old linear scans were quadratic on wide specs.
type egraph struct {
	nodes  []*gnode
	edges  []*gedge
	nodeIx map[string]*gnode
	edgeIx map[string]*gedge
}

// foldName is the lookup key: SQL identifiers match case-insensitively.
func foldName(name string) string { return strings.ToLower(name) }

// addNode appends a node and indexes it (first addition wins, matching the
// scan order of the previous linear lookup).
func (g *egraph) addNode(n *gnode) {
	g.nodes = append(g.nodes, n)
	if g.nodeIx == nil {
		g.nodeIx = make(map[string]*gnode)
	}
	k := foldName(n.name)
	if _, ok := g.nodeIx[k]; !ok {
		g.nodeIx[k] = n
	}
}

// addEdge appends an edge and indexes it.
func (g *egraph) addEdge(e *gedge) {
	g.edges = append(g.edges, e)
	if g.edgeIx == nil {
		g.edgeIx = make(map[string]*gedge)
	}
	k := foldName(e.name)
	if _, ok := g.edgeIx[k]; !ok {
		g.edgeIx[k] = e
	}
}

// reindex rebuilds the lookup maps after wholesale replacement of the node
// or edge lists (structural projection drops components).
func (g *egraph) reindex() {
	g.nodeIx = make(map[string]*gnode, len(g.nodes))
	for _, n := range g.nodes {
		k := foldName(n.name)
		if _, ok := g.nodeIx[k]; !ok {
			g.nodeIx[k] = n
		}
	}
	g.edgeIx = make(map[string]*gedge, len(g.edges))
	for _, e := range g.edges {
		k := foldName(e.name)
		if _, ok := g.edgeIx[k]; !ok {
			g.edgeIx[k] = e
		}
	}
}

func (g *egraph) node(name string) *gnode {
	return g.nodeIx[foldName(name)]
}

func (g *egraph) edge(name string) *gedge {
	return g.edgeIx[foldName(name)]
}

// rootNames returns nodes with no incoming edge in the graph's schema graph.
func (g *egraph) rootNames() map[string]bool {
	roots := map[string]bool{}
	for _, n := range g.nodes {
		roots[n.name] = true
	}
	for _, e := range g.edges {
		if c := g.node(e.child); c != nil {
			delete(roots, c.name)
		}
	}
	return roots
}

// Evaluate materializes the composite object denoted by spec: composition,
// restrictions, structural projection, and the final reachability pass.
// Restriction-free view levels flatten into one graph first, so the
// topological extraction can exploit the whole schema graph.
func (ev *Evaluator) Evaluate(spec *qgm.XNFSpec) (*CO, error) {
	g, err := ev.compose(flattenSpec(spec), true)
	if err != nil {
		return nil, err
	}
	return ev.finalize(g)
}

// flattenSpec merges base levels that carry no restrictions and no column
// projection into their parent level. This is semantics-preserving: such a
// level contributes exactly its (kept) definitions, and reachability is
// applied at the outermost evaluation anyway — which is how Fig. 3's
// employees become reachable through a relationship added one level up.
func flattenSpec(spec *qgm.XNFSpec) *qgm.XNFSpec {
	out := &qgm.XNFSpec{
		Nodes:        append([]*qgm.XNFNode(nil), spec.Nodes...),
		Edges:        append([]*qgm.XNFEdge(nil), spec.Edges...),
		Restrictions: spec.Restrictions,
		Take:         spec.Take,
		Delete:       spec.Delete,
		ViewRefs:     spec.ViewRefs,
	}
	for _, base := range spec.Bases {
		fb := flattenSpec(base)
		if !mergeableLevel(fb) {
			out.Bases = append(out.Bases, fb)
			continue
		}
		for _, n := range fb.Nodes {
			if fb.TakeKeeps(n.Name) {
				out.Nodes = append(out.Nodes, n)
			}
		}
		for _, e := range fb.Edges {
			if fb.TakeKeeps(e.Name) && fb.TakeKeeps(e.Parent) && fb.TakeKeeps(e.Child) {
				out.Edges = append(out.Edges, e)
			}
		}
		out.Bases = append(out.Bases, fb.Bases...)
	}
	return out
}

// mergeableLevel reports whether a (flattened) level can merge upward:
// no restrictions (they need the level's own instance0) and no column
// projection (it would change node schemas mid-composition).
func mergeableLevel(s *qgm.XNFSpec) bool {
	if len(s.Restrictions) > 0 || len(s.Bases) > 0 {
		return false
	}
	for _, it := range s.Take.Items {
		if !it.AllCols {
			return false
		}
	}
	return true
}

// compose evaluates one composition level: candidates from bases and this
// level's definitions, restrictions against this level's instance0, and the
// structural projection. Reachability of the *result* is the caller's
// responsibility (finalize) — which is exactly why adding a relationship in
// a view over a view can make new tuples reachable (Fig. 3). isTop marks
// the outermost level, where candidate pruning by topological extraction is
// sound (no outer level can resurrect tuples).
func (ev *Evaluator) compose(spec *qgm.XNFSpec, isTop bool) (*egraph, error) {
	g := &egraph{}
	for _, base := range spec.Bases {
		bg, err := ev.compose(base, false)
		if err != nil {
			return nil, err
		}
		for _, n := range bg.nodes {
			if g.node(n.name) != nil {
				return nil, fmt.Errorf("xnf: duplicate component table %q in composition", n.name)
			}
			g.addNode(n)
		}
		for _, e := range bg.edges {
			if g.edge(e.name) != nil {
				return nil, fmt.Errorf("xnf: duplicate relationship %q in composition", e.name)
			}
			g.addEdge(e)
		}
	}
	// Materialize this level's nodes. When the spec is a self-contained
	// acyclic constructor, extraction runs top-down: parent results feed
	// the child derivations (the paper's §4.3 — "when we generate the
	// tuples of a parent node, we output them, and also use them again to
	// find the tuples of the associated children"), so a selective root
	// touches only its working set instead of full candidate tables.
	if isTop && !ev.opts.NoSharedSubexpressions && len(spec.Bases) == 0 && specAcyclic(spec) {
		if err := ev.materializeTopDown(spec, g); err != nil {
			return nil, err
		}
	} else {
		for _, node := range spec.Nodes {
			if g.node(node.Name) != nil {
				return nil, fmt.Errorf("xnf: duplicate component table %q", node.Name)
			}
			gn, err := ev.materializeFull(node)
			if err != nil {
				return nil, err
			}
			g.addNode(gn)
		}
	}
	// Derive this level's edges over the candidate node tables. Edges the
	// topological extraction already resolved (their connections fall out
	// of the semijoin fetch) are skipped.
	for _, edge := range spec.Edges {
		if g.edge(edge.Name) != nil {
			continue
		}
		ge, err := ev.evalEdge(edge, g, spec)
		if err != nil {
			return nil, err
		}
		g.addEdge(ge)
	}
	// Restrictions apply against instance0 = reachability of the candidates.
	if len(spec.Restrictions) > 0 {
		in0 := ev.reach(g)
		view := &instView{g: g, in: in0}
		for _, r := range spec.Restrictions {
			if err := ev.applyRestriction(g, view, r); err != nil {
				return nil, err
			}
		}
	}
	// Structural projection.
	if !spec.Take.All {
		if err := ev.applyTake(g, spec.Take); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func allTrue(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

// materializeFull runs a node's full defining query.
func (ev *Evaluator) materializeFull(node *qgm.XNFNode) (*gnode, error) {
	rows, rids, err := ev.host.RunBoxWithRIDs(node.Def)
	if err != nil {
		return nil, fmt.Errorf("xnf: node %s: %v", node.Name, err)
	}
	atomic.AddInt64(&ev.Stats.NodeQueries, 1)
	gn := &gnode{
		name: node.Name, schema: node.Def.Out, rows: rows, rids: rids,
		baseTable: node.BaseTable, colMap: node.ColMap,
		alive: allTrue(len(rows)),
	}
	if gn.rids == nil {
		gn.rids = make([]storage.RID, len(rows))
		for i := range gn.rids {
			gn.rids[i] = storage.NilRID
		}
	}
	return gn, nil
}

// specAcyclic reports whether the spec's schema graph (this level only) has
// no cycles, which the topological extraction requires.
func specAcyclic(spec *qgm.XNFSpec) bool {
	adj := map[string][]string{}
	for _, e := range spec.Edges {
		if strings.EqualFold(e.Parent, e.Child) {
			return false
		}
		adj[strings.ToUpper(e.Parent)] = append(adj[strings.ToUpper(e.Parent)], strings.ToUpper(e.Child))
	}
	state := map[string]int{} // 0 unseen, 1 in stack, 2 done
	var dfs func(n string) bool
	dfs = func(n string) bool {
		switch state[n] {
		case 1:
			return false
		case 2:
			return true
		}
		state[n] = 1
		for _, m := range adj[n] {
			if !dfs(m) {
				return false
			}
		}
		state[n] = 2
		return true
	}
	for _, node := range spec.Nodes {
		if !dfs(strings.ToUpper(node.Name)) {
			return false
		}
	}
	return true
}

// materializeTopDown materializes nodes in topological order, deriving each
// child's candidates from its (already materialized) parents through the
// edge predicates' equi-join structure. Edges whose structure cannot be
// exploited force a full derivation of their child.
func (ev *Evaluator) materializeTopDown(spec *qgm.XNFSpec, g *egraph) error {
	incoming := map[string][]*qgm.XNFEdge{}
	for _, e := range spec.Edges {
		incoming[strings.ToUpper(e.Child)] = append(incoming[strings.ToUpper(e.Child)], e)
	}
	order, err := topoNodes(spec)
	if err != nil {
		return err
	}
	for _, node := range order {
		if g.node(node.Name) != nil {
			return fmt.Errorf("xnf: duplicate component table %q", node.Name)
		}
		inc := incoming[strings.ToUpper(node.Name)]
		if len(inc) == 0 {
			gn, err := ev.materializeFull(node)
			if err != nil {
				return err
			}
			g.addNode(gn)
			continue
		}
		// Per incoming edge, derive a key filter from the parent's
		// materialization; any edge without usable structure forces the
		// full derivation.
		type fetch struct {
			col  string
			keys []types.Value
		}
		var fetches []fetch
		full := false
		for _, e := range inc {
			parent := g.node(e.Parent)
			if parent == nil {
				full = true // parent from a base level; be conservative
				break
			}
			switch {
			case e.FKChildCol != "" && len(e.Using) == 0:
				keys := distinctColumn(parent, e.FKParentCol)
				fetches = append(fetches, fetch{col: e.FKChildCol, keys: keys})
			case e.LinkTable != "":
				keys, lerr := ev.linkChildKeys(e, parent)
				if lerr != nil {
					return lerr
				}
				fetches = append(fetches, fetch{col: e.LinkChildKey, keys: keys})
			default:
				full = true
			}
			if full {
				break
			}
		}
		if full {
			gn, err := ev.materializeFull(node)
			if err != nil {
				return err
			}
			g.addNode(gn)
			continue
		}
		gn := &gnode{
			name: node.Name, schema: node.Def.Out,
			baseTable: node.BaseTable, colMap: node.ColMap,
		}
		seenRID := map[storage.RID]bool{}
		var seenRows map[uint64][]int
		for _, f := range fetches {
			box, berr := wrapWithInFilter(node.Def, f.col, f.keys)
			if berr != nil {
				return berr
			}
			rows, rids, rerr := ev.host.RunBoxWithRIDs(box)
			if rerr != nil {
				return fmt.Errorf("xnf: node %s: %v", node.Name, rerr)
			}
			atomic.AddInt64(&ev.Stats.NodeQueries, 1)
			for i, row := range rows {
				var rid storage.RID = storage.NilRID
				if rids != nil {
					rid = rids[i]
				}
				if rid.Valid() {
					if seenRID[rid] {
						continue
					}
					seenRID[rid] = true
				} else {
					// Fall back to row-equality dedup.
					if seenRows == nil {
						seenRows = map[uint64][]int{}
					}
					h := row.Hash()
					dup := false
					for _, pi := range seenRows[h] {
						if gn.rows[pi].Equal(row) {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					seenRows[h] = append(seenRows[h], len(gn.rows))
				}
				gn.rows = append(gn.rows, row)
				gn.rids = append(gn.rids, rid)
			}
		}
		gn.alive = allTrue(len(gn.rows))
		g.addNode(gn)

		// Resolve connections for simple incoming edges directly from the
		// fetch structure: the child column values point back at parent
		// keys, so a hash match replaces the general edge join.
		for _, e := range inc {
			ev.resolveEdgeInline(e, g)
		}
	}
	return nil
}

// resolveEdgeInline derives an edge's connections without a join when its
// predicate is exactly the provenance equi-structure and its attributes (if
// any) live on the link table. Unresolvable edges stay for evalEdge.
func (ev *Evaluator) resolveEdgeInline(e *qgm.XNFEdge, g *egraph) {
	parent, child := g.node(e.Parent), g.node(e.Child)
	if parent == nil || child == nil {
		return
	}
	conjN := len(qgm.Conjuncts(e.Pred))
	switch {
	case e.FKChildCol != "" && len(e.Using) == 0 && conjN == 1 && len(e.Attrs) == 0:
		pIdx := parent.schema.Index(e.FKParentCol)
		cIdx := child.schema.Index(e.FKChildCol)
		if pIdx < 0 || cIdx < 0 {
			return
		}
		byKey := indexByValue(parent, pIdx)
		ge := &gedge{
			name: e.Name, parent: parent.name, child: child.name,
			parentRole: e.ParentRole, childRole: e.ChildRole,
			fkParent: e.FKParentCol, fkChild: e.FKChildCol,
		}
		for ci, row := range child.rows {
			v := row[cIdx]
			if v.IsNull() {
				continue
			}
			for _, pi := range lookupByValue(byKey, parent, pIdx, v) {
				ge.conns = append(ge.conns, Conn{P: pi, C: ci, LinkRID: storage.NilRID})
			}
		}
		ge.alive = allTrue(len(ge.conns))
		g.addEdge(ge)
		atomic.AddInt64(&ev.Stats.InlineEdges, 1)
	case e.LinkTable != "" && conjN == 2 && attrsOnLink(e):
		pairs, attrRows, attrSchema, err := ev.linkPairs(e, parent)
		if err != nil {
			return // fall back to the join
		}
		pKey := parent.schema.Index(e.LinkParentKey)
		cKey := child.schema.Index(e.LinkChildKey)
		if pKey < 0 || cKey < 0 {
			return
		}
		pByKey := indexByValue(parent, pKey)
		cByKey := indexByValue(child, cKey)
		ge := &gedge{
			name: e.Name, parent: parent.name, child: child.name,
			parentRole: e.ParentRole, childRole: e.ChildRole,
			attrSchema: attrSchema,
			linkTable:  e.LinkTable, linkPCol: e.LinkParentCol, linkCCol: e.LinkChildCol,
			linkPKey: e.LinkParentKey, linkCKey: e.LinkChildKey,
		}
		for i, pr := range pairs {
			var attrs types.Row
			if attrRows != nil {
				attrs = attrRows[i]
			}
			for _, pi := range lookupByValue(pByKey, parent, pKey, pr[0]) {
				for _, ci := range lookupByValue(cByKey, child, cKey, pr[1]) {
					ge.conns = append(ge.conns, Conn{P: pi, C: ci, Attrs: attrs, LinkRID: storage.NilRID})
				}
			}
		}
		ge.alive = allTrue(len(ge.conns))
		g.addEdge(ge)
		atomic.AddInt64(&ev.Stats.InlineEdges, 1)
	}
}

// attrsOnLink reports whether every relationship attribute is a plain
// column of the USING table (quantifier 2).
func attrsOnLink(e *qgm.XNFEdge) bool {
	for _, a := range e.Attrs {
		cr, ok := a.Expr.(*qgm.ColRef)
		if !ok || cr.Quant != 2 {
			return false
		}
	}
	return true
}

// linkPairs fetches (parentKey, childKey, attrs...) rows from the link
// table for the materialized parent keys.
func (ev *Evaluator) linkPairs(e *qgm.XNFEdge, parent *gnode) ([][2]types.Value, []types.Row, types.Schema, error) {
	parentKeys := distinctColumn(parent, e.LinkParentKey)
	linkBox := e.Using[0].Input
	pCol := linkBox.Out.Index(e.LinkParentCol)
	cCol := linkBox.Out.Index(e.LinkChildCol)
	if pCol < 0 || cCol < 0 {
		return nil, nil, nil, fmt.Errorf("xnf: link provenance of %s is incomplete", e.Name)
	}
	list := make([]qgm.Expr, len(parentKeys))
	for i, v := range parentKeys {
		list[i] = &qgm.Const{Val: v}
	}
	sel := &qgm.Box{
		Kind:   qgm.KindSelect,
		Name:   "linkpairs:" + e.Name,
		Quants: []*qgm.Quantifier{{Name: "__u", Input: linkBox}},
		Pred: &qgm.InList{
			E:    &qgm.ColRef{Quant: 0, Col: pCol, Name: e.LinkParentCol},
			List: list,
		},
		Head: []qgm.HeadExpr{
			{Name: e.LinkParentCol, Expr: &qgm.ColRef{Quant: 0, Col: pCol, Name: e.LinkParentCol}},
			{Name: e.LinkChildCol, Expr: &qgm.ColRef{Quant: 0, Col: cCol, Name: e.LinkChildCol}},
		},
		Out: types.Schema{linkBox.Out[pCol], linkBox.Out[cCol]},
	}
	var attrSchema types.Schema
	for _, a := range e.Attrs {
		cr := a.Expr.(*qgm.ColRef) // checked by attrsOnLink
		sel.Head = append(sel.Head, qgm.HeadExpr{Name: a.Name,
			Expr: &qgm.ColRef{Quant: 0, Col: cr.Col, Name: a.Name}})
		col := types.Column{Name: a.Name, Kind: linkBox.Out[cr.Col].Kind}
		sel.Out = append(sel.Out, col)
		attrSchema = append(attrSchema, col)
	}
	rows, _, err := ev.host.RunBoxWithRIDs(sel)
	if err != nil {
		return nil, nil, nil, err
	}
	pairs := make([][2]types.Value, len(rows))
	var attrRows []types.Row
	if len(attrSchema) > 0 {
		attrRows = make([]types.Row, len(rows))
	}
	for i, r := range rows {
		pairs[i] = [2]types.Value{r[0], r[1]}
		if attrRows != nil {
			attrRows[i] = r[2:].Clone()
		}
	}
	return pairs, attrRows, attrSchema, nil
}

// indexByValue hashes a node column for repeated lookups.
func indexByValue(n *gnode, col int) map[uint64][]int {
	out := make(map[uint64][]int, len(n.rows))
	for i, row := range n.rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		out[v.Hash()] = append(out[v.Hash()], i)
	}
	return out
}

// lookupByValue resolves a hash bucket with equality verification.
func lookupByValue(idx map[uint64][]int, n *gnode, col int, v types.Value) []int {
	var out []int
	for _, i := range idx[v.Hash()] {
		if types.Equal(n.rows[i][col], v) {
			out = append(out, i)
		}
	}
	return out
}

// topoNodes orders the spec's nodes parents-first.
func topoNodes(spec *qgm.XNFSpec) ([]*qgm.XNFNode, error) {
	indeg := map[string]int{}
	byName := map[string]*qgm.XNFNode{}
	for _, n := range spec.Nodes {
		indeg[strings.ToUpper(n.Name)] = 0
		byName[strings.ToUpper(n.Name)] = n
	}
	adj := map[string][]string{}
	for _, e := range spec.Edges {
		p, c := strings.ToUpper(e.Parent), strings.ToUpper(e.Child)
		adj[p] = append(adj[p], c)
		indeg[c]++
	}
	var queue []string
	for _, n := range spec.Nodes {
		if indeg[strings.ToUpper(n.Name)] == 0 {
			queue = append(queue, strings.ToUpper(n.Name))
		}
	}
	var out []*qgm.XNFNode
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, byName[cur])
		for _, m := range adj[cur] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(out) != len(spec.Nodes) {
		return nil, fmt.Errorf("xnf: schema graph is cyclic (topological extraction)")
	}
	return out, nil
}

// distinctColumn returns the distinct non-null values of one parent column.
func distinctColumn(n *gnode, col string) []types.Value {
	i := n.schema.Index(col)
	if i < 0 {
		return nil
	}
	seen := map[uint64][]types.Value{}
	var out []types.Value
	for _, row := range n.rows {
		v := row[i]
		if v.IsNull() {
			continue
		}
		h := v.Hash()
		dup := false
		for _, p := range seen[h] {
			if types.Equal(p, v) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], v)
		out = append(out, v)
	}
	return out
}

// linkChildKeys queries the link table for the distinct child keys joined
// to the parent's materialized keys.
func (ev *Evaluator) linkChildKeys(e *qgm.XNFEdge, parent *gnode) ([]types.Value, error) {
	parentKeys := distinctColumn(parent, e.LinkParentKey)
	linkBox := e.Using[0].Input
	pCol := linkBox.Out.Index(e.LinkParentCol)
	cCol := linkBox.Out.Index(e.LinkChildCol)
	if pCol < 0 || cCol < 0 {
		return nil, fmt.Errorf("xnf: link provenance of %s is incomplete", e.Name)
	}
	list := make([]qgm.Expr, len(parentKeys))
	for i, v := range parentKeys {
		list[i] = &qgm.Const{Val: v}
	}
	sel := &qgm.Box{
		Kind:   qgm.KindSelect,
		Name:   "linkkeys:" + e.Name,
		Quants: []*qgm.Quantifier{{Name: "__u", Input: linkBox}},
		Pred: &qgm.InList{
			E:    &qgm.ColRef{Quant: 0, Col: pCol, Name: e.LinkParentCol},
			List: list,
		},
		Head: []qgm.HeadExpr{{Name: e.LinkChildCol,
			Expr: &qgm.ColRef{Quant: 0, Col: cCol, Name: e.LinkChildCol}}},
		Out:      types.Schema{linkBox.Out[cCol]},
		Distinct: true,
	}
	rows, err := ev.host.RunBox(sel)
	if err != nil {
		return nil, err
	}
	out := make([]types.Value, 0, len(rows))
	for _, r := range rows {
		if !r[0].IsNull() {
			out = append(out, r[0])
		}
	}
	return out, nil
}

// wrapWithInFilter narrows a node derivation to rows whose output column
// col falls in keys. An empty key set yields an empty derivation.
func wrapWithInFilter(def *qgm.Box, col string, keys []types.Value) (*qgm.Box, error) {
	ci := def.Out.Index(col)
	if ci < 0 {
		return nil, fmt.Errorf("xnf: node output lacks join column %q", col)
	}
	if len(keys) == 0 {
		return &qgm.Box{Kind: qgm.KindValues, Name: def.Name + ":empty", Out: def.Out}, nil
	}
	list := make([]qgm.Expr, len(keys))
	for i, v := range keys {
		list[i] = &qgm.Const{Val: v}
	}
	outer := &qgm.Box{
		Kind:   qgm.KindSelect,
		Name:   def.Name + ":semijoin",
		Quants: []*qgm.Quantifier{{Name: "__n", Input: def}},
		Pred:   &qgm.InList{E: &qgm.ColRef{Quant: 0, Col: ci, Name: col}, List: list},
		Out:    def.Out.Clone(),
	}
	for i, c := range def.Out {
		outer.Head = append(outer.Head, qgm.HeadExpr{Name: c.Name,
			Expr: &qgm.ColRef{Quant: 0, Col: i, Name: c.Name}})
	}
	return outer, nil
}

// evalEdge derives connection instances by running a generated SQL query —
// the XNF semantic rewrite output for one relationship. With common
// subexpression sharing the partner node materializations feed the query
// directly; the ablation re-derives them from base tables first.
func (ev *Evaluator) evalEdge(edge *qgm.XNFEdge, g *egraph, spec *qgm.XNFSpec) (*gedge, error) {
	parent := g.node(edge.Parent)
	child := g.node(edge.Child)
	if parent == nil || child == nil {
		return nil, fmt.Errorf("xnf: relationship %s references missing partner tables (%s, %s)", edge.Name, edge.Parent, edge.Child)
	}
	if ev.opts.NoSharedSubexpressions {
		// Ablation: recompute the partner node derivations, modeling an
		// implementation without cross-query common subexpressions.
		for _, n := range []string{edge.Parent, edge.Child} {
			if def := findNodeDef(spec, n); def != nil {
				if _, err := ev.host.RunBox(def); err != nil {
					return nil, err
				}
				atomic.AddInt64(&ev.Stats.RecomputedNodes, 1)
			}
		}
	}
	// Build the edge query: SELECT p.__tid, c.__tid, attrs...
	// FROM <parent materialization> p, <child materialization> c, using...
	// WHERE <relate predicate>.
	pBox := valuesBoxWithTID(edge.Parent+"_m", parent)
	cBox := valuesBoxWithTID(edge.Child+"_m", child)
	quants := []*qgm.Quantifier{
		{Name: "__p", Input: pBox},
		{Name: "__c", Input: cBox},
	}
	quants = append(quants, edge.Using...)
	sel := &qgm.Box{Kind: qgm.KindSelect, Name: "edge:" + edge.Name, Quants: quants, Pred: edge.Pred}
	pTID := len(parent.schema)
	cTID := len(child.schema)
	sel.Head = append(sel.Head,
		qgm.HeadExpr{Name: "__ptid", Expr: &qgm.ColRef{Quant: 0, Col: pTID, Name: "__tid"}},
		qgm.HeadExpr{Name: "__ctid", Expr: &qgm.ColRef{Quant: 1, Col: cTID, Name: "__tid"}},
	)
	sel.Out = types.Schema{
		{Name: "__ptid", Kind: types.KindInt},
		{Name: "__ctid", Kind: types.KindInt},
	}
	var attrSchema types.Schema
	for _, a := range edge.Attrs {
		sel.Head = append(sel.Head, a)
		col := types.Column{Name: a.Name, Kind: types.KindNull}
		if cr, ok := a.Expr.(*qgm.ColRef); ok {
			switch cr.Quant {
			case 0:
				col.Kind = parent.schema[cr.Col].Kind
			case 1:
				col.Kind = child.schema[cr.Col].Kind
			default:
				uq := cr.Quant - 2
				if uq < len(edge.Using) {
					col.Kind = edge.Using[uq].Input.Out[cr.Col].Kind
				}
			}
		}
		sel.Out = append(sel.Out, col)
		attrSchema = append(attrSchema, col)
	}
	rows, err := ev.host.RunBox(sel)
	if err != nil {
		return nil, fmt.Errorf("xnf: relationship %s: %v", edge.Name, err)
	}
	atomic.AddInt64(&ev.Stats.EdgeQueries, 1)
	ge := &gedge{
		name: edge.Name, parent: parent.name, child: child.name,
		parentRole: edge.ParentRole, childRole: edge.ChildRole,
		attrSchema: attrSchema,
		fkParent:   edge.FKParentCol, fkChild: edge.FKChildCol,
		linkTable: edge.LinkTable, linkPCol: edge.LinkParentCol,
		linkCCol: edge.LinkChildCol, linkPKey: edge.LinkParentKey, linkCKey: edge.LinkChildKey,
	}
	for _, r := range rows {
		conn := Conn{P: int(r[0].Int()), C: int(r[1].Int()), LinkRID: storage.NilRID}
		if len(r) > 2 {
			conn.Attrs = r[2:].Clone()
		}
		ge.conns = append(ge.conns, conn)
	}
	ge.alive = allTrue(len(ge.conns))
	return ge, nil
}

// findNodeDef locates a node's defining box anywhere in the composition.
func findNodeDef(spec *qgm.XNFSpec, name string) *qgm.Box {
	if n := spec.FindNode(name); n != nil {
		return n.Def
	}
	return nil
}

// valuesBoxWithTID wraps a node materialization as a Values box whose rows
// carry a trailing tuple id, giving edge queries stable tuple identity.
func valuesBoxWithTID(name string, n *gnode) *qgm.Box {
	out := n.schema.Clone()
	out = append(out, types.Column{Name: "__tid", Kind: types.KindInt})
	rows := make([][]types.Value, len(n.rows))
	for i, r := range n.rows {
		row := make([]types.Value, 0, len(r)+1)
		row = append(row, r...)
		row = append(row, types.NewInt(int64(i)))
		rows[i] = row
	}
	return &qgm.Box{Kind: qgm.KindValues, Name: name, Out: out, ValueRows: rows}
}

// reach computes reachability over the candidate graph honoring alive flags.
// Roots are nodes without incoming edges; their alive tuples are reachable
// by definition. Semi-naive evaluation propagates a frontier; the naive
// ablation re-scans every connection each round.
func (ev *Evaluator) reach(g *egraph) map[string][]bool {
	in := map[string][]bool{}
	roots := g.rootNames()
	for _, n := range g.nodes {
		set := make([]bool, len(n.rows))
		if roots[n.name] {
			copy(set, n.alive)
		}
		in[n.name] = set
	}
	if !ev.opts.NaiveFixpoint {
		// Semi-naive: one adjacency pass builds per-tuple successor lists,
		// then a frontier worklist touches every connection exactly once.
		type target struct {
			node string
			idx  int
		}
		adjacency := map[string][][]target{}
		for _, n := range g.nodes {
			adjacency[n.name] = make([][]target, len(n.rows))
		}
		for _, e := range g.edges {
			p, c := g.node(e.parent), g.node(e.child)
			arr := adjacency[p.name]
			for ci, conn := range e.conns {
				if !e.alive[ci] || !p.alive[conn.P] || !c.alive[conn.C] {
					continue
				}
				arr[conn.P] = append(arr[conn.P], target{node: c.name, idx: conn.C})
			}
		}
		type item struct {
			node string
			idx  int
		}
		var frontier []item
		for _, n := range g.nodes {
			set := in[n.name]
			for i, r := range set {
				if r {
					frontier = append(frontier, item{n.name, i})
				}
			}
		}
		for len(frontier) > 0 {
			atomic.AddInt64(&ev.Stats.FixpointRounds, 1)
			it := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, tgt := range adjacency[it.node][it.idx] {
				set := in[tgt.node]
				if !set[tgt.idx] {
					set[tgt.idx] = true
					frontier = append(frontier, item{tgt.node, tgt.idx})
				}
			}
		}
		return in
	}
	// Naive fixpoint.
	for {
		atomic.AddInt64(&ev.Stats.FixpointRounds, 1)
		changed := false
		for _, e := range g.edges {
			p, c := g.node(e.parent), g.node(e.child)
			pset, cset := in[e.parent], in[e.child]
			_ = p
			for ci, conn := range e.conns {
				if !e.alive[ci] || !c.alive[conn.C] {
					continue
				}
				if pset[conn.P] && !cset[conn.C] {
					cset[conn.C] = true
					changed = true
				}
			}
		}
		if !changed {
			return in
		}
	}
}

// applyRestriction filters node tuples or connections (paper §3.3). The
// predicate evaluates against instance0 (view), so path expressions range
// over the unrestricted CO of this composition level.
func (ev *Evaluator) applyRestriction(g *egraph, view *instView, r qgm.XNFRestrictionSpec) error {
	if r.IsEdge {
		e := g.edge(r.Target)
		if e == nil {
			return fmt.Errorf("xnf: restriction on unknown relationship %q", r.Target)
		}
		p, c := g.node(e.parent), g.node(e.child)
		pVar, cVar := e.parent, e.child
		if len(r.Vars) == 2 {
			pVar, cVar = r.Vars[0], r.Vars[1]
		}
		for ci, conn := range e.conns {
			if !e.alive[ci] {
				continue
			}
			env := &evalEnv{view: view, bindings: []binding{
				{name: pVar, node: p, idx: conn.P},
				{name: cVar, node: c, idx: conn.C},
			}}
			if len(e.attrSchema) > 0 {
				env.attrs = append(env.attrs, attrBinding{edge: e, conn: ci})
			}
			keep, err := evalPredTri(env, r.RawPred)
			if err != nil {
				return fmt.Errorf("xnf: restriction on %s: %v", r.Target, err)
			}
			if keep != types.True {
				e.alive[ci] = false
			}
		}
		return nil
	}
	n := g.node(r.Target)
	if n == nil {
		return fmt.Errorf("xnf: restriction on unknown component %q", r.Target)
	}
	varName := n.name
	if len(r.Vars) == 1 {
		varName = r.Vars[0]
	}
	for i := range n.rows {
		if !n.alive[i] {
			continue
		}
		env := &evalEnv{view: view, bindings: []binding{{name: varName, node: n, idx: i}}}
		keep, err := evalPredTri(env, r.RawPred)
		if err != nil {
			return fmt.Errorf("xnf: restriction on %s: %v", r.Target, err)
		}
		if keep != types.True {
			n.alive[i] = false
		}
	}
	return nil
}

// applyTake drops components not kept and applies column projection.
// Dropping a node implicitly drops relationships that reference it
// (well-formedness, paper §3.3).
func (ev *Evaluator) applyTake(g *egraph, take qgm.XNFTakeSpec) error {
	keepNode := map[string]*qgm.XNFTakeItem{}
	keepEdge := map[string]bool{}
	for i := range take.Items {
		item := &take.Items[i]
		if n := g.node(item.Name); n != nil {
			keepNode[strings.ToUpper(n.name)] = item
			continue
		}
		if e := g.edge(item.Name); e != nil {
			keepEdge[strings.ToUpper(e.name)] = true
			continue
		}
		return fmt.Errorf("xnf: TAKE references unknown component %q", item.Name)
	}
	var nodes []*gnode
	for _, n := range g.nodes {
		item, ok := keepNode[strings.ToUpper(n.name)]
		if !ok {
			continue
		}
		if !item.AllCols {
			if err := projectNode(n, item.Cols); err != nil {
				return err
			}
		}
		nodes = append(nodes, n)
	}
	var edges []*gedge
	for _, e := range g.edges {
		if !keepEdge[strings.ToUpper(e.name)] {
			continue
		}
		// Implicit drop when a partner table is gone.
		if _, pOK := keepNode[strings.ToUpper(e.parent)]; !pOK {
			continue
		}
		if _, cOK := keepNode[strings.ToUpper(e.child)]; !cOK {
			continue
		}
		edges = append(edges, e)
	}
	g.nodes, g.edges = nodes, edges
	g.reindex()
	return nil
}

// projectNode narrows a node to the named columns, keeping provenance maps
// consistent.
func projectNode(n *gnode, cols []string) error {
	idxs := make([]int, len(cols))
	for i, c := range cols {
		p := n.schema.Index(c)
		if p < 0 {
			return fmt.Errorf("xnf: TAKE projects unknown column %q of %s", c, n.name)
		}
		idxs[i] = p
	}
	newSchema := make(types.Schema, len(idxs))
	for i, p := range idxs {
		newSchema[i] = n.schema[p]
	}
	for ri, row := range n.rows {
		nr := make(types.Row, len(idxs))
		for i, p := range idxs {
			nr[i] = row[p]
		}
		n.rows[ri] = nr
	}
	if n.colMap != nil {
		ncm := make([]int, len(idxs))
		for i, p := range idxs {
			ncm[i] = n.colMap[p]
		}
		n.colMap = ncm
	}
	n.schema = newSchema
	return nil
}

// finalize applies the reachability constraint to the composed graph and
// compacts it into the public CO form.
func (ev *Evaluator) finalize(g *egraph) (*CO, error) {
	roots := g.rootNames()
	in := ev.reach(g)
	co := &CO{}
	remap := map[string][]int{}
	for _, n := range g.nodes {
		ni := &NodeInstance{
			Name: n.name, Schema: n.schema, BaseTable: n.baseTable,
			ColMap: n.colMap, Root: roots[n.name],
		}
		rm := make([]int, len(n.rows))
		for i := range rm {
			rm[i] = -1
		}
		set := in[n.name]
		for i, row := range n.rows {
			if !n.alive[i] || !set[i] {
				continue
			}
			rm[i] = len(ni.Rows)
			ni.Rows = append(ni.Rows, row)
			ni.RIDs = append(ni.RIDs, n.rids[i])
		}
		remap[n.name] = rm
		co.Nodes = append(co.Nodes, ni)
	}
	for _, e := range g.edges {
		ei := &EdgeInstance{
			Name: e.name, Parent: g.node(e.parent).name, Child: g.node(e.child).name,
			AttrSchema:  e.attrSchema,
			FKParentCol: e.fkParent, FKChildCol: e.fkChild,
			LinkTable: e.linkTable, LinkParentCol: e.linkPCol, LinkChildCol: e.linkCCol,
			LinkParentKey: e.linkPKey, LinkChildKey: e.linkCKey,
		}
		pMap, cMap := remap[e.parent], remap[e.child]
		for ci, conn := range e.conns {
			if !e.alive[ci] {
				continue
			}
			np, nc := pMap[conn.P], cMap[conn.C]
			if np < 0 || nc < 0 {
				continue // endpoint excluded → connection excluded
			}
			ei.Conns = append(ei.Conns, Conn{P: np, C: nc, Attrs: conn.Attrs, LinkRID: conn.LinkRID})
		}
		co.Edges = append(co.Edges, ei)
	}
	if err := co.Validate(); err != nil {
		return nil, err
	}
	return co, nil
}

// Delete implements CO-level deletion (§3.7): every component tuple maps
// down to a removal of its base tuple, and link-table connections map to
// link-row deletions. Every node must be updatable.
func (ev *Evaluator) Delete(spec *qgm.XNFSpec) (int, error) {
	co, err := ev.Evaluate(spec)
	if err != nil {
		return 0, err
	}
	for _, n := range co.Nodes {
		if len(n.Rows) > 0 && n.BaseTable == "" {
			return 0, fmt.Errorf("xnf: CO DELETE requires updatable components; %s is not traceable to a base table", n.Name)
		}
	}
	deleted := 0
	// Link rows first (they reference the node tuples' keys).
	for _, e := range co.Edges {
		if e.LinkTable == "" {
			continue
		}
		p := co.Node(e.Parent)
		c := co.Node(e.Child)
		schema, err := ev.host.TableSchema(e.LinkTable)
		if err != nil {
			return deleted, err
		}
		pCol := schema.Index(e.LinkParentCol)
		cCol := schema.Index(e.LinkChildCol)
		pKey := p.Schema.Index(e.LinkParentKey)
		cKey := c.Schema.Index(e.LinkChildKey)
		if pCol < 0 || cCol < 0 || pKey < 0 || cKey < 0 {
			return deleted, fmt.Errorf("xnf: link provenance of %s is incomplete", e.Name)
		}
		// Collect the key pairs to remove.
		want := map[[2]uint64][]Conn{}
		for _, conn := range e.Conns {
			k := [2]uint64{p.Rows[conn.P][pKey].Hash(), c.Rows[conn.C][cKey].Hash()}
			want[k] = append(want[k], conn)
		}
		var rids []storage.RID
		err = ev.host.ScanTable(e.LinkTable, func(rid storage.RID, row types.Row) (bool, error) {
			k := [2]uint64{row[pCol].Hash(), row[cCol].Hash()}
			for _, conn := range want[k] {
				if types.Equal(row[pCol], p.Rows[conn.P][pKey]) && types.Equal(row[cCol], c.Rows[conn.C][cKey]) {
					rids = append(rids, rid)
					break
				}
			}
			return false, nil
		})
		if err != nil {
			return deleted, err
		}
		for _, rid := range rids {
			if err := ev.host.DeleteRow(e.LinkTable, rid); err != nil {
				return deleted, err
			}
			deleted++
		}
	}
	// Node tuples, deduplicated by base identity.
	seen := map[string]map[storage.RID]bool{}
	for _, n := range co.Nodes {
		for i := range n.Rows {
			rid := n.RIDs[i]
			if !rid.Valid() {
				return deleted, fmt.Errorf("xnf: tuple %d of %s has no base provenance", i, n.Name)
			}
			if seen[n.BaseTable] == nil {
				seen[n.BaseTable] = map[storage.RID]bool{}
			}
			if seen[n.BaseTable][rid] {
				continue
			}
			seen[n.BaseTable][rid] = true
			if err := ev.host.DeleteRow(n.BaseTable, rid); err != nil {
				return deleted, err
			}
			deleted++
		}
	}
	return deleted, nil
}
