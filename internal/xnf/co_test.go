package xnf

import (
	"testing"

	"sqlxnf/internal/qgm"
	"sqlxnf/internal/storage"
	"sqlxnf/internal/types"
)

func mkNode(name string, root bool, n int) *NodeInstance {
	ni := &NodeInstance{
		Name:   name,
		Schema: types.Schema{{Name: "id", Kind: types.KindInt}},
		Root:   root,
	}
	for i := 0; i < n; i++ {
		ni.Rows = append(ni.Rows, types.Row{types.NewInt(int64(i))})
		ni.RIDs = append(ni.RIDs, storage.NilRID)
	}
	return ni
}

func TestCOValidateWellFormedness(t *testing.T) {
	co := &CO{
		Nodes: []*NodeInstance{mkNode("A", true, 2), mkNode("B", false, 2)},
		Edges: []*EdgeInstance{{Name: "ab", Parent: "A", Child: "B",
			Conns: []Conn{{P: 0, C: 1}}}},
	}
	if err := co.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dangling parent index.
	co.Edges[0].Conns = []Conn{{P: 9, C: 0}}
	if err := co.Validate(); err == nil {
		t.Error("dangling parent index should fail validation")
	}
	// Missing partner table.
	co2 := &CO{
		Nodes: []*NodeInstance{mkNode("A", true, 1)},
		Edges: []*EdgeInstance{{Name: "ab", Parent: "A", Child: "MISSING"}},
	}
	if err := co2.Validate(); err == nil {
		t.Error("missing partner table should fail validation (well-formedness)")
	}
}

func TestCOCheckReachability(t *testing.T) {
	// A(root) -> B, where B[1] has no incoming connection: violation.
	co := &CO{
		Nodes: []*NodeInstance{mkNode("A", true, 1), mkNode("B", false, 2)},
		Edges: []*EdgeInstance{{Name: "ab", Parent: "A", Child: "B",
			Conns: []Conn{{P: 0, C: 0}}}},
	}
	if err := co.CheckReachability(); err == nil {
		t.Error("unreachable B[1] should violate the constraint")
	}
	co.Edges[0].Conns = append(co.Edges[0].Conns, Conn{P: 0, C: 1})
	if err := co.CheckReachability(); err != nil {
		t.Errorf("all connected: %v", err)
	}
	// Transitive reachability through a chain.
	co3 := &CO{
		Nodes: []*NodeInstance{mkNode("A", true, 1), mkNode("B", false, 1), mkNode("C", false, 1)},
		Edges: []*EdgeInstance{
			{Name: "ab", Parent: "A", Child: "B", Conns: []Conn{{P: 0, C: 0}}},
			{Name: "bc", Parent: "B", Child: "C", Conns: []Conn{{P: 0, C: 0}}},
		},
	}
	if err := co3.CheckReachability(); err != nil {
		t.Errorf("chain reachability: %v", err)
	}
}

func TestCOAccessors(t *testing.T) {
	co := &CO{
		Nodes: []*NodeInstance{mkNode("A", true, 3), mkNode("B", false, 2)},
		Edges: []*EdgeInstance{{Name: "ab", Parent: "A", Child: "B",
			Conns: []Conn{{P: 0, C: 0}, {P: 1, C: 1}}}},
	}
	if co.Node("a") == nil || co.Node("A") == nil {
		t.Error("case-insensitive node lookup")
	}
	if co.Edge("AB") == nil {
		t.Error("case-insensitive edge lookup")
	}
	if co.Node("zzz") != nil || co.Edge("zzz") != nil {
		t.Error("missing lookups should be nil")
	}
	if co.Size() != 5 || co.ConnCount() != 2 {
		t.Errorf("Size=%d ConnCount=%d", co.Size(), co.ConnCount())
	}
	if s := co.String(); s == "" {
		t.Error("empty String()")
	}
}

func specWith(nodes []string, edges [][2]string) *qgm.XNFSpec {
	spec := &qgm.XNFSpec{}
	for _, n := range nodes {
		spec.Nodes = append(spec.Nodes, &qgm.XNFNode{Name: n})
	}
	for _, e := range edges {
		spec.Edges = append(spec.Edges, &qgm.XNFEdge{Name: e[0] + e[1], Parent: e[0], Child: e[1]})
	}
	return spec
}

func TestSpecAcyclic(t *testing.T) {
	if !specAcyclic(specWith([]string{"A", "B", "C"}, [][2]string{{"A", "B"}, {"B", "C"}})) {
		t.Error("chain should be acyclic")
	}
	if specAcyclic(specWith([]string{"A", "B"}, [][2]string{{"A", "B"}, {"B", "A"}})) {
		t.Error("2-cycle should be cyclic")
	}
	if specAcyclic(specWith([]string{"A"}, [][2]string{{"A", "A"}})) {
		t.Error("self edge should be cyclic")
	}
	// Diamond (shared node) is acyclic.
	if !specAcyclic(specWith([]string{"A", "B", "C", "D"},
		[][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}})) {
		t.Error("diamond should be acyclic")
	}
}

func TestTopoNodes(t *testing.T) {
	spec := specWith([]string{"C", "A", "B"}, [][2]string{{"A", "B"}, {"B", "C"}})
	order, err := topoNodes(spec)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Name] = i
	}
	if !(pos["A"] < pos["B"] && pos["B"] < pos["C"]) {
		t.Errorf("order = %v", pos)
	}
	if _, err := topoNodes(specWith([]string{"A", "B"}, [][2]string{{"A", "B"}, {"B", "A"}})); err == nil {
		t.Error("cycle should fail topo sort")
	}
}

func TestFlattenSpec(t *testing.T) {
	inner := specWith([]string{"A", "B"}, [][2]string{{"A", "B"}})
	inner.Take = qgm.XNFTakeSpec{All: true}
	outer := &qgm.XNFSpec{
		Bases: []*qgm.XNFSpec{inner},
		Nodes: []*qgm.XNFNode{{Name: "C"}},
		Edges: []*qgm.XNFEdge{{Name: "bc", Parent: "B", Child: "C"}},
		Take:  qgm.XNFTakeSpec{All: true},
	}
	flat := flattenSpec(outer)
	if len(flat.Bases) != 0 || len(flat.Nodes) != 3 || len(flat.Edges) != 2 {
		t.Errorf("flatten: bases=%d nodes=%d edges=%d", len(flat.Bases), len(flat.Nodes), len(flat.Edges))
	}
	// A restricted base cannot merge.
	inner2 := specWith([]string{"A"}, nil)
	inner2.Take = qgm.XNFTakeSpec{All: true}
	inner2.Restrictions = []qgm.XNFRestrictionSpec{{Target: "A"}}
	outer2 := &qgm.XNFSpec{Bases: []*qgm.XNFSpec{inner2}, Take: qgm.XNFTakeSpec{All: true}}
	flat2 := flattenSpec(outer2)
	if len(flat2.Bases) != 1 {
		t.Error("restricted base must stay hierarchical")
	}
	// A base with structural projection merges only kept components.
	inner3 := specWith([]string{"A", "B"}, [][2]string{{"A", "B"}})
	inner3.Take = qgm.XNFTakeSpec{Items: []qgm.XNFTakeItem{{Name: "A", AllCols: true}}}
	outer3 := &qgm.XNFSpec{Bases: []*qgm.XNFSpec{inner3}, Take: qgm.XNFTakeSpec{All: true}}
	flat3 := flattenSpec(outer3)
	if len(flat3.Nodes) != 1 || flat3.Nodes[0].Name != "A" || len(flat3.Edges) != 0 {
		t.Errorf("projected flatten: %+v", flat3)
	}
}
