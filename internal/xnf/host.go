// Package xnf implements the paper's core contribution: evaluation of
// SQL/XNF composite-object queries as abstractions over relational data.
//
// The XNF semantic rewrite (paper §4.3) translates the XNF operator into
// plain SQL boxes — one query per node and per relationship — sharing
// common subexpressions (node materializations feed the edge queries), then
// applies XNF semantics that SQL cannot express directly: the reachability
// constraint (§2), node/edge restrictions (§3.3), structural projection,
// recursive composite objects (§3.4), and path expressions (§3.5).
//
// Composition is hierarchical: a query over an XNF view takes the view's
// components as candidates and recomputes reachability over the composed
// schema graph, which is how Fig. 3's employees e3/e4 "show up" when the
// membership relationship is added.
package xnf

import (
	"sqlxnf/internal/qgm"
	"sqlxnf/internal/storage"
	"sqlxnf/internal/types"
)

// Host is the engine surface the XNF evaluator and CO cache need: running
// rewritten SQL boxes and mutating base tables. The engine implements it;
// defining it here keeps the dependency one-way (engine → xnf).
type Host interface {
	// RunBox compiles (rewrite + optimize) and executes a box.
	RunBox(box *qgm.Box) ([]types.Row, error)
	// RunBoxWithRIDs additionally reports base-tuple provenance when the
	// box is a single-table selection; rids[i] is the base RID of row i
	// (invalid RIDs mark non-updatable rows).
	RunBoxWithRIDs(box *qgm.Box) ([]types.Row, []storage.RID, error)
	// GetRow fetches a base tuple.
	GetRow(table string, rid storage.RID) (types.Row, error)
	// InsertRow appends a base tuple (maintaining indexes) and returns its RID.
	InsertRow(table string, row types.Row) (storage.RID, error)
	// UpdateRow replaces a base tuple; the tuple may move.
	UpdateRow(table string, rid storage.RID, row types.Row) (storage.RID, error)
	// DeleteRow removes a base tuple (maintaining indexes).
	DeleteRow(table string, rid storage.RID) error
	// ScanTable visits every live tuple of a base table with its RID.
	ScanTable(table string, fn func(rid storage.RID, row types.Row) (stop bool, err error)) error
	// TableSchema returns a base table's schema.
	TableSchema(table string) (types.Schema, error)
}

// Options control evaluation strategy; benches ablate them. The zero
// value enables the optimized strategies.
type Options struct {
	// NoSharedSubexpressions disables reuse of node materializations: each
	// edge query re-derives its partner nodes from base tables, and the
	// topological extraction is off — the ablation arm against the paper's
	// §4.3 ("The optimizer is able to take advantage of common
	// subexpression across these queries").
	NoSharedSubexpressions bool
	// NaiveFixpoint re-scans all connections every reachability round
	// instead of propagating a frontier (semi-naive ablation).
	NaiveFixpoint bool
}

// DefaultOptions enables the optimized strategies.
func DefaultOptions() Options { return Options{} }
