// Property-based tests (external test package: the engine implements the
// Host interface, and importing it from package xnf would be a cycle).
package xnf_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sqlxnf/internal/engine"
	"sqlxnf/internal/parser"
	"sqlxnf/internal/qgm"
	"sqlxnf/internal/xnf"
)

// randomCompany loads a random company database and returns the session.
func randomCompany(t *testing.T, rng *rand.Rand) *engine.Session {
	t.Helper()
	s := engine.NewDefault().Session()
	s.MustExec(`
	CREATE TABLE DEPT (dno INT NOT NULL PRIMARY KEY, loc VARCHAR, budget FLOAT);
	CREATE TABLE EMP (eno INT NOT NULL PRIMARY KEY, sal FLOAT, edno INT);
	CREATE TABLE PROJ (pno INT NOT NULL PRIMARY KEY, pdno INT, pmgrno INT);
	CREATE INDEX emp_edno ON EMP (edno);
	CREATE INDEX proj_pdno ON PROJ (pdno);
	`)
	nDept := 2 + rng.Intn(6)
	nEmp := 5 + rng.Intn(30)
	nProj := 2 + rng.Intn(10)
	locs := []string{"NY", "SF", "LA"}
	for d := 1; d <= nDept; d++ {
		s.MustExec(fmt.Sprintf("INSERT INTO DEPT VALUES (%d, '%s', %d)",
			d, locs[rng.Intn(3)], 1000+rng.Intn(9000)))
	}
	for e := 1; e <= nEmp; e++ {
		edno := "NULL"
		if rng.Intn(10) > 0 { // some employees are unattached
			edno = fmt.Sprint(1 + rng.Intn(nDept))
		}
		s.MustExec(fmt.Sprintf("INSERT INTO EMP VALUES (%d, %d, %s)",
			e, 500+rng.Intn(4000), edno))
	}
	for p := 1; p <= nProj; p++ {
		pdno := "NULL"
		if rng.Intn(5) > 0 {
			pdno = fmt.Sprint(1 + rng.Intn(nDept))
		}
		s.MustExec(fmt.Sprintf("INSERT INTO PROJ VALUES (%d, %s, %d)",
			p, pdno, 1+rng.Intn(nEmp)))
	}
	return s
}

const propQuery = `OUT OF
 Xdept AS (SELECT * FROM DEPT WHERE loc = 'NY'),
 Xemp AS EMP,
 Xproj AS PROJ,
 employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
 ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno),
 projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno)
TAKE *`

// canonical renders a CO in an order-independent form for equality checks.
func canonical(co *xnf.CO) string {
	var parts []string
	for _, n := range co.Nodes {
		var rows []string
		for _, r := range n.Rows {
			rows = append(rows, r.String())
		}
		sort.Strings(rows)
		parts = append(parts, fmt.Sprintf("%s:%v", n.Name, rows))
	}
	for _, e := range co.Edges {
		p := co.Node(e.Parent)
		c := co.Node(e.Child)
		var conns []string
		for _, conn := range e.Conns {
			conns = append(conns, p.Rows[conn.P].String()+"->"+c.Rows[conn.C].String())
		}
		sort.Strings(conns)
		parts = append(parts, fmt.Sprintf("%s:%v", e.Name, conns))
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}

// TestPropertyTopDownEqualsFullMaterialization: the topological extraction
// (shared subexpressions on) must produce exactly the CO that full candidate
// materialization produces — on random databases.
func TestPropertyTopDownEqualsFullMaterialization(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomCompany(t, rng)
		fast := mustCO(t, s, xnf.Options{})
		slow := mustCO(t, s, xnf.Options{NoSharedSubexpressions: true})
		if canonical(fast) != canonical(slow) {
			t.Fatalf("seed %d: extraction strategies disagree\nfast: %s\nslow: %s",
				seed, fast, slow)
		}
	}
}

// TestPropertySemiNaiveEqualsNaive: both reachability strategies agree.
func TestPropertySemiNaiveEqualsNaive(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomCompany(t, rng)
		a := mustCO(t, s, xnf.Options{})
		b := mustCO(t, s, xnf.Options{NaiveFixpoint: true})
		if canonical(a) != canonical(b) {
			t.Fatalf("seed %d: fixpoint strategies disagree", seed)
		}
	}
}

// TestPropertyReachabilityInvariant: every evaluation result satisfies the
// reachability constraint and well-formedness.
func TestPropertyReachabilityInvariant(t *testing.T) {
	for seed := int64(200); seed < 225; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomCompany(t, rng)
		co := mustCO(t, s, xnf.Options{})
		if err := co.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := co.CheckReachability(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Cross-check against plain SQL: employees of NY departments.
		r, err := s.Exec(`SELECT COUNT(*) FROM EMP e, DEPT d
			WHERE e.edno = d.dno AND d.loc = 'NY'`)
		if err != nil {
			t.Fatal(err)
		}
		direct := int(r.Rows[0][0].Int())
		// Xemp includes employees reachable via employment only (no other
		// path leads to Xemp in this schema graph).
		if got := len(co.Node("Xemp").Rows); got != direct {
			t.Fatalf("seed %d: Xemp=%d, SQL count=%d", seed, got, direct)
		}
	}
}

func mustCO(t *testing.T, s *engine.Session, opts xnf.Options) *xnf.CO {
	t.Helper()
	co, err := evalWith(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// evalWith evaluates propQuery with explicit evaluator options.
func evalWith(s *engine.Session, opts xnf.Options) (*xnf.CO, error) {
	st, err := parser.ParseOne(propQuery)
	if err != nil {
		return nil, err
	}
	box, err := qgm.NewBuilder(s.Engine().Catalog(), nil).BuildXNF(st.(*parser.XNFQuery))
	if err != nil {
		return nil, err
	}
	return xnf.NewEvaluator(s, opts).Evaluate(box.XNF)
}
