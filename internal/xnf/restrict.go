package xnf

import (
	"fmt"
	"sort"
	"strings"

	"sqlxnf/internal/parser"
	"sqlxnf/internal/types"
)

// instView is the instance against which restriction predicates and path
// expressions evaluate: the candidate graph limited to instance0 (the
// reachable, pre-restriction CO of the current composition level).
type instView struct {
	g  *egraph
	in map[string][]bool
}

// member reports whether tuple idx of node n belongs to the view.
func (v *instView) member(n *gnode, idx int) bool {
	return n.alive[idx] && v.in[n.name][idx]
}

// connOK reports whether connection ci of edge e belongs to the view.
func (v *instView) connOK(e *gedge, ci int) bool {
	if !e.alive[ci] {
		return false
	}
	p, c := v.g.node(e.parent), v.g.node(e.child)
	conn := e.conns[ci]
	return v.member(p, conn.P) && v.member(c, conn.C)
}

// binding associates a variable name with one tuple.
type binding struct {
	name string
	node *gnode
	idx  int
}

// attrBinding exposes a connection's relationship attributes to the
// predicate (edge restrictions can reference WITH ATTRIBUTES columns).
type attrBinding struct {
	edge *gedge
	conn int
}

// evalEnv is the evaluation environment for restriction predicates: tuple
// bindings, attribute bindings, and a parent link for qualified path steps
// that reference outer anchors (e.g. p.budget > d.budget).
type evalEnv struct {
	view     *instView
	bindings []binding
	attrs    []attrBinding
	parent   *evalEnv
}

// lookup finds a binding by variable name through the environment chain.
func (env *evalEnv) lookup(name string) *binding {
	for e := env; e != nil; e = e.parent {
		for i := range e.bindings {
			if strings.EqualFold(e.bindings[i].name, name) {
				return &e.bindings[i]
			}
		}
	}
	return nil
}

// resolveColumn evaluates a column reference against the environment.
func (env *evalEnv) resolveColumn(cr *parser.ColumnRef) (types.Value, error) {
	if cr.Qualifier != "" {
		if b := env.lookup(cr.Qualifier); b != nil {
			ci := b.node.schema.Index(cr.Name)
			if ci < 0 {
				return types.Null(), fmt.Errorf("xnf: column %q not found in %s", cr.Name, b.node.name)
			}
			return b.node.rows[b.idx][ci], nil
		}
		// Qualifier may name an edge whose attributes are bound.
		for e := env; e != nil; e = e.parent {
			for _, ab := range e.attrs {
				if strings.EqualFold(ab.edge.name, cr.Qualifier) {
					ai := ab.edge.attrSchema.Index(cr.Name)
					if ai < 0 {
						return types.Null(), fmt.Errorf("xnf: attribute %q not found in relationship %s", cr.Name, ab.edge.name)
					}
					return ab.edge.conns[ab.conn].Attrs[ai], nil
				}
			}
		}
		return types.Null(), fmt.Errorf("xnf: unknown variable %q", cr.Qualifier)
	}
	// Unqualified: search tuple bindings, then attributes.
	var found *types.Value
	for e := env; e != nil; e = e.parent {
		for _, b := range e.bindings {
			ci := b.node.schema.Index(cr.Name)
			if ci < 0 {
				continue
			}
			if found != nil {
				return types.Null(), fmt.Errorf("xnf: column %q is ambiguous in restriction", cr.Name)
			}
			v := b.node.rows[b.idx][ci]
			found = &v
		}
		if found != nil {
			return *found, nil
		}
		for _, ab := range e.attrs {
			ai := ab.edge.attrSchema.Index(cr.Name)
			if ai < 0 {
				continue
			}
			v := ab.edge.conns[ab.conn].Attrs[ai]
			return v, nil
		}
	}
	return types.Null(), fmt.Errorf("xnf: column %q not found in restriction scope", cr.Name)
}

// evalPredTri evaluates a restriction predicate to three-valued logic.
func evalPredTri(env *evalEnv, e parser.Expr) (types.Tri, error) {
	v, err := evalValue(env, e)
	if err != nil {
		return types.Unknown, err
	}
	if v.IsNull() {
		return types.Unknown, nil
	}
	if v.Kind() != types.KindBool {
		return types.Unknown, fmt.Errorf("xnf: restriction predicate evaluated to %s, want boolean", v.Kind())
	}
	return types.TriOf(v.Bool()), nil
}

// evalValue evaluates a restriction expression. Path expressions appear
// through COUNT(path) and EXISTS path.
func evalValue(env *evalEnv, e parser.Expr) (types.Value, error) {
	switch x := e.(type) {
	case *parser.Literal:
		return x.Val, nil
	case *parser.ColumnRef:
		return env.resolveColumn(x)
	case *parser.BinaryExpr:
		switch x.Op {
		case "AND", "OR":
			lt, err := evalPredTri(env, x.L)
			if err != nil {
				return types.Null(), err
			}
			if x.Op == "AND" && lt == types.False {
				return types.NewBool(false), nil
			}
			if x.Op == "OR" && lt == types.True {
				return types.NewBool(true), nil
			}
			rt, err := evalPredTri(env, x.R)
			if err != nil {
				return types.Null(), err
			}
			if x.Op == "AND" {
				return lt.And(rt).Value(), nil
			}
			return lt.Or(rt).Value(), nil
		case "=", "<>", "<", "<=", ">", ">=":
			lv, err := evalValue(env, x.L)
			if err != nil {
				return types.Null(), err
			}
			rv, err := evalValue(env, x.R)
			if err != nil {
				return types.Null(), err
			}
			t, err := types.CompareTri(x.Op, lv, rv)
			if err != nil {
				return types.Null(), err
			}
			return t.Value(), nil
		default:
			lv, err := evalValue(env, x.L)
			if err != nil {
				return types.Null(), err
			}
			rv, err := evalValue(env, x.R)
			if err != nil {
				return types.Null(), err
			}
			return types.Arith(x.Op, lv, rv)
		}
	case *parser.UnaryExpr:
		if x.Op == "NOT" {
			t, err := evalPredTri(env, x.E)
			if err != nil {
				return types.Null(), err
			}
			return t.Not().Value(), nil
		}
		v, err := evalValue(env, x.E)
		if err != nil {
			return types.Null(), err
		}
		return types.Neg(v)
	case *parser.IsNullExpr:
		v, err := evalValue(env, x.E)
		if err != nil {
			return types.Null(), err
		}
		r := v.IsNull()
		if x.Negate {
			r = !r
		}
		return types.NewBool(r), nil
	case *parser.InExpr:
		v, err := evalValue(env, x.E)
		if err != nil {
			return types.Null(), err
		}
		result := types.False
		for _, le := range x.List {
			lv, err := evalValue(env, le)
			if err != nil {
				return types.Null(), err
			}
			t, err := types.CompareTri("=", v, lv)
			if err != nil {
				return types.Null(), err
			}
			result = result.Or(t)
		}
		if x.Negate {
			result = result.Not()
		}
		return result.Value(), nil
	case *parser.ExistsExpr:
		if x.Path == nil {
			return types.Null(), fmt.Errorf("xnf: EXISTS subqueries are not supported in XNF restrictions; use a path expression")
		}
		_, set, err := evalPath(env, x.Path)
		if err != nil {
			return types.Null(), err
		}
		r := len(set) > 0
		if x.Negate {
			r = !r
		}
		return types.NewBool(r), nil
	case *parser.FuncExpr:
		if x.PathArg == nil {
			return types.Null(), fmt.Errorf("xnf: %s over non-path arguments is not supported in restrictions", x.Name)
		}
		node, set, err := evalPath(env, x.PathArg)
		if err != nil {
			return types.Null(), err
		}
		switch x.Name {
		case "COUNT":
			return types.NewInt(int64(len(set))), nil
		case "SUM", "AVG", "MIN", "MAX":
			return types.Null(), fmt.Errorf("xnf: %s over a path needs a column; only COUNT and EXISTS are supported", x.Name)
		default:
			_ = node
			return types.Null(), fmt.Errorf("xnf: unknown function %s", x.Name)
		}
	case *parser.PathExpr:
		return types.Null(), fmt.Errorf("xnf: a bare path expression denotes a table; wrap it in COUNT or EXISTS")
	default:
		return types.Null(), fmt.Errorf("xnf: unsupported restriction expression %T", e)
	}
}

// evalPath evaluates a path expression against the view, returning the
// target node and the sorted, deduplicated indexes of reachable tuples
// (a path denotes a subset of its target table, §3.5).
func evalPath(env *evalEnv, p *parser.PathExpr) (*gnode, []int, error) {
	g := env.view.g
	var curNode *gnode
	var curSet map[int]bool
	// Anchor: a bound variable or a node name.
	if b := env.lookup(p.Anchor); b != nil {
		curNode = b.node
		curSet = map[int]bool{}
		if env.view.member(b.node, b.idx) {
			curSet[b.idx] = true
		}
	} else if n := g.node(p.Anchor); n != nil {
		curNode = n
		curSet = map[int]bool{}
		for i := range n.rows {
			if env.view.member(n, i) {
				curSet[i] = true
			}
		}
	} else {
		return nil, nil, fmt.Errorf("xnf: path anchor %q is neither a variable nor a component table", p.Anchor)
	}
	for _, step := range p.Steps {
		// Edge step (by name or role): traverse.
		if e, forward, ok := resolveEdgeStep(g, curNode, step.Name); ok {
			next := map[int]bool{}
			for ci, conn := range e.conns {
				if !env.view.connOK(e, ci) {
					continue
				}
				if forward && curSet[conn.P] {
					next[conn.C] = true
				}
				if !forward && curSet[conn.C] {
					next[conn.P] = true
				}
			}
			if forward {
				curNode = g.node(e.child)
			} else {
				curNode = g.node(e.parent)
			}
			curSet = next
			continue
		}
		// Node step: a check (and optional qualification).
		if n := g.node(step.Name); n != nil {
			if !strings.EqualFold(n.name, curNode.name) {
				return nil, nil, fmt.Errorf("xnf: path step %s does not follow from %s (no relationship traversed)", step.Name, curNode.name)
			}
			if step.Pred != nil {
				filtered := map[int]bool{}
				varName := step.Var
				if varName == "" {
					varName = n.name
				}
				for idx := range curSet {
					stepEnv := &evalEnv{
						view:     env.view,
						bindings: []binding{{name: varName, node: n, idx: idx}},
						parent:   env,
					}
					t, err := evalPredTri(stepEnv, step.Pred)
					if err != nil {
						return nil, nil, err
					}
					if t == types.True {
						filtered[idx] = true
					}
				}
				curSet = filtered
			}
			continue
		}
		return nil, nil, fmt.Errorf("xnf: path step %q is neither a relationship nor the current component table", step.Name)
	}
	out := make([]int, 0, len(curSet))
	for i := range curSet {
		out = append(out, i)
	}
	sort.Ints(out)
	return curNode, out, nil
}

// resolveEdgeStep matches a path step name against edges incident on the
// current node. Step names may be edge names (direction inferred from which
// side the current node is on; parent→child preferred for cyclic edges) or
// role names (the role names the *target* side: stepping to the "manager"
// role traverses child→parent when manager is the parent role).
func resolveEdgeStep(g *egraph, cur *gnode, name string) (*gedge, bool, bool) {
	for _, e := range g.edges {
		if strings.EqualFold(e.name, name) {
			onParent := strings.EqualFold(e.parent, cur.name)
			onChild := strings.EqualFold(e.child, cur.name)
			switch {
			case onParent: // includes cyclic edges: default parent→child
				return e, true, true
			case onChild:
				return e, false, true
			}
		}
		// Role names select a direction on cyclic or ambiguous edges.
		if e.childRole != "" && strings.EqualFold(e.childRole, name) && strings.EqualFold(e.parent, cur.name) {
			return e, true, true
		}
		if e.parentRole != "" && strings.EqualFold(e.parentRole, name) && strings.EqualFold(e.child, cur.name) {
			return e, false, true
		}
	}
	return nil, false, false
}
