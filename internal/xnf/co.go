package xnf

import (
	"fmt"
	"strings"

	"sqlxnf/internal/storage"
	"sqlxnf/internal/types"
)

// Conn is one connection instance: indexes into the parent and child node
// instance rows, plus relationship attribute values and, for link-table
// relationships, the RID of the backing link row.
type Conn struct {
	P, C    int
	Attrs   types.Row
	LinkRID storage.RID
}

// NodeInstance is one component table of a materialized composite object.
type NodeInstance struct {
	Name   string
	Schema types.Schema
	Rows   []types.Row
	// RIDs carry base-tuple provenance parallel to Rows; invalid RIDs mark
	// rows that cannot be traced to one base tuple.
	RIDs []storage.RID
	// BaseTable / ColMap describe updatability: node column i maps to base
	// column ColMap[i] of BaseTable. Empty BaseTable means read-only.
	BaseTable string
	ColMap    []int
	// Root marks root tables (no incoming relationship in the CO's schema
	// graph); every root tuple is reachable by definition.
	Root bool
}

// EdgeInstance is one relationship of a materialized composite object.
type EdgeInstance struct {
	Name       string
	Parent     string
	Child      string
	AttrSchema types.Schema
	Conns      []Conn
	// Updatability provenance (see qgm.XNFEdge).
	FKParentCol   string
	FKChildCol    string
	LinkTable     string
	LinkParentCol string
	LinkChildCol  string
	LinkParentKey string
	LinkChildKey  string
}

// CO is a materialized composite object: a heterogeneous set of interrelated
// tuples (paper §2). Node and edge order follows the schema graph
// declaration order.
type CO struct {
	Nodes []*NodeInstance
	Edges []*EdgeInstance
}

// Node returns the named component table, or nil.
func (co *CO) Node(name string) *NodeInstance {
	for _, n := range co.Nodes {
		if strings.EqualFold(n.Name, name) {
			return n
		}
	}
	return nil
}

// Edge returns the named relationship, or nil.
func (co *CO) Edge(name string) *EdgeInstance {
	for _, e := range co.Edges {
		if strings.EqualFold(e.Name, name) {
			return e
		}
	}
	return nil
}

// Size returns the total number of tuples across all component tables.
func (co *CO) Size() int {
	n := 0
	for _, node := range co.Nodes {
		n += len(node.Rows)
	}
	return n
}

// ConnCount returns the total number of connection instances.
func (co *CO) ConnCount() int {
	n := 0
	for _, e := range co.Edges {
		n += len(e.Conns)
	}
	return n
}

// Validate checks well-formedness: every relationship's partner tables are
// component tables of the CO and every connection endpoint indexes a live
// tuple (paper §2's well-formedness constraint).
func (co *CO) Validate() error {
	for _, e := range co.Edges {
		p := co.Node(e.Parent)
		c := co.Node(e.Child)
		if p == nil {
			return fmt.Errorf("xnf: relationship %s references missing parent table %s", e.Name, e.Parent)
		}
		if c == nil {
			return fmt.Errorf("xnf: relationship %s references missing child table %s", e.Name, e.Child)
		}
		for _, conn := range e.Conns {
			if conn.P < 0 || conn.P >= len(p.Rows) {
				return fmt.Errorf("xnf: connection in %s has dangling parent index %d", e.Name, conn.P)
			}
			if conn.C < 0 || conn.C >= len(c.Rows) {
				return fmt.Errorf("xnf: connection in %s has dangling child index %d", e.Name, conn.C)
			}
		}
	}
	return nil
}

// CheckReachability verifies the reachability constraint on the instance:
// every tuple is in a root table or reachable from a root tuple via
// parent→child traversal. The evaluator guarantees this; property tests
// call it directly.
func (co *CO) CheckReachability() error {
	reach := co.reachableSets()
	for _, n := range co.Nodes {
		if n.Root {
			continue
		}
		set := reach[n.Name]
		for i := range n.Rows {
			if !set[i] {
				return fmt.Errorf("xnf: tuple %d of %s violates the reachability constraint", i, n.Name)
			}
		}
	}
	return nil
}

// reachableSets runs BFS from all root tuples.
func (co *CO) reachableSets() map[string][]bool {
	reach := map[string][]bool{}
	for _, n := range co.Nodes {
		set := make([]bool, len(n.Rows))
		if n.Root {
			for i := range set {
				set[i] = true
			}
		}
		reach[n.Name] = set
	}
	changed := true
	for changed {
		changed = false
		for _, e := range co.Edges {
			pset, cset := reach[e.Parent], reach[e.Child]
			for _, conn := range e.Conns {
				if pset[conn.P] && !cset[conn.C] {
					cset[conn.C] = true
					changed = true
				}
			}
		}
	}
	return reach
}

// String renders a compact summary.
func (co *CO) String() string {
	var parts []string
	for _, n := range co.Nodes {
		r := ""
		if n.Root {
			r = "*"
		}
		parts = append(parts, fmt.Sprintf("%s%s:%d", n.Name, r, len(n.Rows)))
	}
	for _, e := range co.Edges {
		parts = append(parts, fmt.Sprintf("%s(%s->%s):%d", e.Name, e.Parent, e.Child, len(e.Conns)))
	}
	return "CO{" + strings.Join(parts, " ") + "}"
}
