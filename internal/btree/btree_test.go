package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sqlxnf/internal/storage"
	"sqlxnf/internal/types"
)

func intKey(v int64) []byte { return types.EncodeKey([]types.Value{types.NewInt(v)}) }

func rid(n int) storage.RID { return storage.RID{Page: storage.PageID(n / 100), Slot: uint16(n % 100)} }

func TestInsertSeekSmall(t *testing.T) {
	tr := New(false)
	for i := 0; i < 10; i++ {
		if err := tr.Insert(intKey(int64(i)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 10; i++ {
		rids := tr.SeekEQ(intKey(int64(i)))
		if len(rids) != 1 || rids[0] != rid(i) {
			t.Errorf("SeekEQ(%d) = %v", i, rids)
		}
	}
	if rids := tr.SeekEQ(intKey(99)); len(rids) != 0 {
		t.Errorf("SeekEQ(miss) = %v", rids)
	}
}

func TestUniqueRejectsDuplicates(t *testing.T) {
	tr := New(true)
	if err := tr.Insert(intKey(1), rid(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(intKey(1), rid(2)); err != ErrDuplicate {
		t.Errorf("duplicate insert err = %v, want ErrDuplicate", err)
	}
	// Same key+rid is idempotent in non-unique trees.
	nt := New(false)
	_ = nt.Insert(intKey(1), rid(1))
	_ = nt.Insert(intKey(1), rid(1))
	if nt.Len() != 1 {
		t.Errorf("idempotent insert inflated Len to %d", nt.Len())
	}
	// Distinct rids under one key coexist in non-unique trees.
	_ = nt.Insert(intKey(1), rid(2))
	if got := len(nt.SeekEQ(intKey(1))); got != 2 {
		t.Errorf("non-unique SeekEQ found %d", got)
	}
}

func TestSplitGrowthAndHeight(t *testing.T) {
	tr := New(true)
	n := 10000
	for i := 0; i < n; i++ {
		if err := tr.Insert(intKey(int64(i)), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if h := tr.Height(); h < 2 || h > 5 {
		t.Errorf("height = %d, implausible for %d entries with fan-out 64", h, n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every key findable.
	for i := 0; i < n; i += 97 {
		if len(tr.SeekEQ(intKey(int64(i)))) != 1 {
			t.Fatalf("lost key %d after splits", i)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr := New(true)
	for i := 0; i < 1000; i++ {
		_ = tr.Insert(intKey(int64(i*2)), rid(i)) // even keys 0..1998
	}
	collect := func(lo, hi []byte, loInc, hiInc bool) []int {
		var out []int
		tr.Scan(lo, hi, loInc, hiInc, func(k []byte, r storage.RID) bool {
			out = append(out, int(r.Page)*100+int(r.Slot))
			return true
		})
		return out
	}
	// Inclusive window [10, 20] → keys 10..20 even → entries 5..10.
	got := collect(intKey(10), intKey(20), true, true)
	want := []int{5, 6, 7, 8, 9, 10}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("range [10,20] = %v, want %v", got, want)
	}
	// Exclusive endpoints.
	got = collect(intKey(10), intKey(20), false, false)
	want = []int{6, 7, 8, 9}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("range (10,20) = %v, want %v", got, want)
	}
	// Unbounded low.
	got = collect(nil, intKey(6), true, true)
	want = []int{0, 1, 2, 3}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("range (-inf,6] = %v, want %v", got, want)
	}
	// Unbounded high with early stop.
	n := 0
	tr.Scan(intKey(1990), nil, true, true, func([]byte, storage.RID) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
	// Full scan is ordered.
	var prev []byte
	tr.Scan(nil, nil, true, true, func(k []byte, _ storage.RID) bool {
		if prev != nil && bytes.Compare(prev, k) > 0 {
			t.Fatal("full scan out of order")
		}
		prev = append(prev[:0], k...)
		return true
	})
}

func TestDeleteWithRebalance(t *testing.T) {
	tr := New(true)
	n := 5000
	for i := 0; i < n; i++ {
		_ = tr.Insert(intKey(int64(i)), rid(i))
	}
	// Delete in an order that forces borrows and merges.
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for step, i := range perm {
		if !tr.Delete(intKey(int64(i)), rid(i)) {
			t.Fatalf("delete of %d failed", i)
		}
		if step%500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("after %d deletes: %v", step+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len after full delete = %d", tr.Len())
	}
	if tr.Delete(intKey(1), rid(1)) {
		t.Error("delete from empty tree should return false")
	}
}

func TestDeleteByKeyOnlyInUnique(t *testing.T) {
	tr := New(true)
	_ = tr.Insert(intKey(7), rid(7))
	// Unique trees allow deleting with a stale/unknown rid.
	if !tr.Delete(intKey(7), rid(999)) {
		t.Error("unique delete by key should succeed despite rid mismatch")
	}
	if tr.Len() != 0 {
		t.Error("entry not removed")
	}
	// Non-unique trees require the exact pair.
	nt := New(false)
	_ = nt.Insert(intKey(7), rid(7))
	if nt.Delete(intKey(7), rid(999)) {
		t.Error("non-unique delete with wrong rid should fail")
	}
	if !nt.Delete(intKey(7), rid(7)) {
		t.Error("exact pair delete should succeed")
	}
}

// TestRandomizedAgainstModel drives the tree with a random workload and
// compares every observable against a sorted-slice model.
func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(false)
	type pair struct {
		key int64
		rid storage.RID
	}
	var model []pair
	find := func(p pair) int {
		return sort.Search(len(model), func(i int) bool {
			if model[i].key != p.key {
				return model[i].key > p.key
			}
			if model[i].rid.Page != p.rid.Page {
				return model[i].rid.Page > p.rid.Page
			}
			return model[i].rid.Slot >= p.rid.Slot
		})
	}
	for step := 0; step < 20000; step++ {
		k := int64(rng.Intn(500)) // dense key space → many duplicates
		r := rid(rng.Intn(1000))
		p := pair{k, r}
		if rng.Intn(2) == 0 {
			i := find(p)
			exists := i < len(model) && model[i] == p
			_ = tr.Insert(intKey(k), r)
			if !exists {
				model = append(model, pair{})
				copy(model[i+1:], model[i:])
				model[i] = p
			}
		} else {
			i := find(p)
			exists := i < len(model) && model[i] == p
			got := tr.Delete(intKey(k), r)
			if got != exists {
				t.Fatalf("step %d: Delete(%d,%v) = %v, model says %v", step, k, r, got, exists)
			}
			if exists {
				model = append(model[:i], model[i+1:]...)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", tr.Len(), len(model))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Full scan matches model order exactly.
	i := 0
	tr.Scan(nil, nil, true, true, func(k []byte, r storage.RID) bool {
		if i >= len(model) {
			t.Fatal("scan longer than model")
		}
		if !bytes.Equal(k, intKey(model[i].key)) || r != model[i].rid {
			t.Fatalf("scan mismatch at %d", i)
		}
		i++
		return true
	})
	if i != len(model) {
		t.Fatalf("scan visited %d of %d", i, len(model))
	}
}

func TestStringKeys(t *testing.T) {
	tr := New(false)
	words := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for i, w := range words {
		k := types.EncodeKey([]types.Value{types.NewString(w)})
		_ = tr.Insert(k, rid(i))
	}
	var got []string
	tr.Scan(nil, nil, true, true, func(k []byte, r storage.RID) bool {
		got = append(got, words[int(r.Page)*100+int(r.Slot)])
		return true
	})
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("string scan order = %v", got)
	}
}

// TestIteratorMatchesScan: the streaming iterator visits exactly the entries
// Scan visits, for every bound shape, on a tree big enough to span leaves.
func TestIteratorMatchesScan(t *testing.T) {
	tr := New(false)
	for i := 0; i < 1000; i++ {
		// Duplicated keys (i%250) force multi-RID chains across leaves.
		_ = tr.Insert(intKey(int64(i%250)), rid(i))
	}
	bounds := []struct {
		lo, hi       []byte
		loInc, hiInc bool
	}{
		{nil, nil, true, true},
		{intKey(10), intKey(10), true, true},
		{intKey(17), intKey(101), true, true},
		{intKey(17), intKey(101), false, false},
		{intKey(-5), intKey(17), true, false},
		{nil, intKey(40), true, true},
		{intKey(200), nil, false, true},
		{intKey(400), nil, true, true}, // beyond max
	}
	for bi, b := range bounds {
		type ent struct {
			key string
			rid storage.RID
		}
		var want []ent
		tr.Scan(b.lo, b.hi, b.loInc, b.hiInc, func(k []byte, r storage.RID) bool {
			want = append(want, ent{string(k), r})
			return true
		})
		var got []ent
		it := tr.Iter(b.lo, b.hi, b.loInc, b.hiInc)
		for {
			k, r, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, ent{string(k), r})
		}
		if len(got) != len(want) {
			t.Fatalf("bounds[%d]: iterator visited %d entries, scan %d", bi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("bounds[%d]: entry %d differs", bi, i)
			}
		}
	}
}
