// Package btree implements an order-preserving B+tree index mapping encoded
// keys (see types.EncodeKey) to tuple RIDs. Indexes are memory-resident —
// the buffer-pool I/O the reproduction measures concerns heap pages; index
// probes model Starburst's buffer-resident index access path.
//
// The tree stores (key, rid) composites, so duplicate user keys coexist in
// non-unique indexes and every stored entry is totally ordered; separators
// carry the full composite, which keeps duplicates that span leaves
// reachable. Unique indexes reject a second rid under an existing key.
package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"sqlxnf/internal/storage"
)

// ErrDuplicate is returned when inserting an existing key into a unique tree.
var ErrDuplicate = errors.New("btree: duplicate key in unique index")

const (
	maxEntries = 64             // fan-out of leaf and internal nodes
	minEntries = maxEntries / 2 // underflow threshold
)

// entry is one (key, rid) pair; internal nodes reuse it as separators.
type entry struct {
	key []byte
	rid storage.RID
}

// compareEntry orders by key bytes, then by RID, making every composite
// unique inside non-unique indexes.
func compareEntry(a, b entry) int {
	if c := bytes.Compare(a.key, b.key); c != 0 {
		return c
	}
	if a.rid.Page != b.rid.Page {
		if a.rid.Page < b.rid.Page {
			return -1
		}
		return 1
	}
	if a.rid.Slot != b.rid.Slot {
		if a.rid.Slot < b.rid.Slot {
			return -1
		}
		return 1
	}
	return 0
}

type node struct {
	leaf     bool
	entries  []entry // leaf payload
	seps     []entry // internal separators: len(children)-1
	children []*node
	next     *node // leaf chain for range scans
}

// Tree is a B+tree index. Under MVCC, index readers no longer hold table
// locks, so the tree carries its own latch: public methods take mu and
// delegate to unexported unlatched implementations. Key byte slices are
// copied at insert and never mutated afterwards, so entries handed out by
// scans stay valid after the latch drops.
type Tree struct {
	mu     sync.RWMutex
	root   *node
	unique bool
	size   int
}

// New creates an empty tree. unique enforces at most one RID per key.
func New(unique bool) *Tree {
	return &Tree{root: &node{leaf: true}, unique: unique}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Unique reports whether the index enforces key uniqueness.
func (t *Tree) Unique() bool { return t.unique }

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

// findLeaf descends to the leaf that would contain composite e, recording
// the path for structural maintenance.
func (t *Tree) findLeaf(e entry) (*node, []*node, []int) {
	var path []*node
	var idx []int
	n := t.root
	for !n.leaf {
		i := 0
		for i < len(n.seps) && compareEntry(e, n.seps[i]) >= 0 {
			i++
		}
		path = append(path, n)
		idx = append(idx, i)
		n = n.children[i]
	}
	return n, path, idx
}

// lowerBound returns the first position in entries with entry >= e.
func lowerBound(entries []entry, e entry) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntry(entries[mid], e) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key, rid). Re-inserting an identical (key, rid) pair is a
// no-op. For unique trees a second rid under an existing key returns
// ErrDuplicate.
func (t *Tree) Insert(key []byte, rid storage.RID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.unique {
		dup := false
		t.scanLocked(key, key, true, true, func(_ []byte, r storage.RID) bool {
			dup = r != rid
			return false
		})
		if dup {
			return ErrDuplicate
		}
	}
	e := entry{key: append([]byte(nil), key...), rid: rid}
	leaf, path, idx := t.findLeaf(e)
	i := lowerBound(leaf.entries, e)
	if i < len(leaf.entries) && compareEntry(leaf.entries[i], e) == 0 {
		return nil // exact duplicate: idempotent
	}
	leaf.entries = append(leaf.entries, entry{})
	copy(leaf.entries[i+1:], leaf.entries[i:])
	leaf.entries[i] = e
	t.size++
	if len(leaf.entries) > maxEntries {
		t.splitLeaf(leaf, path, idx)
	}
	return nil
}

func (t *Tree) splitLeaf(leaf *node, path []*node, idx []int) {
	mid := len(leaf.entries) / 2
	right := &node{leaf: true, next: leaf.next}
	right.entries = append(right.entries, leaf.entries[mid:]...)
	leaf.entries = leaf.entries[:mid:mid]
	leaf.next = right
	t.insertInternal(path, idx, right.entries[0], right)
}

// insertInternal pushes a new separator/child pair up the path, splitting
// internal nodes as needed.
func (t *Tree) insertInternal(path []*node, idx []int, sep entry, right *node) {
	for level := len(path) - 1; ; level-- {
		if level < 0 {
			t.root = &node{
				seps:     []entry{sep},
				children: []*node{t.root, right},
			}
			return
		}
		parent := path[level]
		i := idx[level]
		parent.seps = append(parent.seps, entry{})
		copy(parent.seps[i+1:], parent.seps[i:])
		parent.seps[i] = sep
		parent.children = append(parent.children, nil)
		copy(parent.children[i+2:], parent.children[i+1:])
		parent.children[i+1] = right
		if len(parent.children) <= maxEntries {
			return
		}
		// Split the internal node.
		midIdx := len(parent.seps) / 2
		sep = parent.seps[midIdx]
		newRight := &node{
			seps:     append([]entry(nil), parent.seps[midIdx+1:]...),
			children: append([]*node(nil), parent.children[midIdx+1:]...),
		}
		parent.seps = parent.seps[:midIdx:midIdx]
		parent.children = parent.children[: midIdx+1 : midIdx+1]
		right = newRight
	}
}

// Delete removes (key, rid). It returns false when the pair is absent. In a
// unique tree the stored rid wins when the caller passes a stale one: the
// entry matching key alone is removed.
func (t *Tree) Delete(key []byte, rid storage.RID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := entry{key: key, rid: rid}
	if t.deleteExact(e) {
		return true
	}
	if !t.unique {
		return false
	}
	// Fall back to key-only lookup for unique trees.
	var found *entry
	t.scanLocked(key, key, true, true, func(k []byte, r storage.RID) bool {
		found = &entry{key: append([]byte(nil), k...), rid: r}
		return false
	})
	if found == nil {
		return false
	}
	return t.deleteExact(*found)
}

func (t *Tree) deleteExact(e entry) bool {
	leaf, path, idx := t.findLeaf(e)
	i := lowerBound(leaf.entries, e)
	if i >= len(leaf.entries) || compareEntry(leaf.entries[i], e) != 0 {
		return false
	}
	leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
	t.size--
	t.rebalance(leaf, path, idx)
	return true
}

// rebalance restores the minimum-occupancy invariant after a deletion.
func (t *Tree) rebalance(n *node, path []*node, idx []int) {
	for level := len(path) - 1; level >= 0; level-- {
		under := false
		if n.leaf {
			under = len(n.entries) < minEntries
		} else {
			under = len(n.children) < minEntries
		}
		if !under {
			return
		}
		parent := path[level]
		i := idx[level]
		// Try borrowing from the left sibling, then the right, else merge.
		if i > 0 && t.canLend(parent.children[i-1]) {
			t.borrowFromLeft(parent, i)
			return
		}
		if i < len(parent.children)-1 && t.canLend(parent.children[i+1]) {
			t.borrowFromRight(parent, i)
			return
		}
		if i > 0 {
			t.merge(parent, i-1)
		} else {
			t.merge(parent, i)
		}
		n = parent
	}
	// Root underflow: collapse a one-child internal root.
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
}

func (t *Tree) canLend(n *node) bool {
	if n.leaf {
		return len(n.entries) > minEntries
	}
	return len(n.children) > minEntries
}

func (t *Tree) borrowFromLeft(parent *node, i int) {
	left, cur := parent.children[i-1], parent.children[i]
	if cur.leaf {
		e := left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		cur.entries = append([]entry{e}, cur.entries...)
		parent.seps[i-1] = cur.entries[0]
		return
	}
	k := left.seps[len(left.seps)-1]
	c := left.children[len(left.children)-1]
	left.seps = left.seps[:len(left.seps)-1]
	left.children = left.children[:len(left.children)-1]
	cur.seps = append([]entry{parent.seps[i-1]}, cur.seps...)
	cur.children = append([]*node{c}, cur.children...)
	parent.seps[i-1] = k
}

func (t *Tree) borrowFromRight(parent *node, i int) {
	cur, right := parent.children[i], parent.children[i+1]
	if cur.leaf {
		e := right.entries[0]
		right.entries = right.entries[1:]
		cur.entries = append(cur.entries, e)
		parent.seps[i] = right.entries[0]
		return
	}
	cur.seps = append(cur.seps, parent.seps[i])
	cur.children = append(cur.children, right.children[0])
	parent.seps[i] = right.seps[0]
	right.seps = right.seps[1:]
	right.children = right.children[1:]
}

// merge folds child i+1 into child i of parent.
func (t *Tree) merge(parent *node, i int) {
	left, right := parent.children[i], parent.children[i+1]
	if left.leaf {
		left.entries = append(left.entries, right.entries...)
		left.next = right.next
	} else {
		left.seps = append(left.seps, parent.seps[i])
		left.seps = append(left.seps, right.seps...)
		left.children = append(left.children, right.children...)
	}
	parent.seps = append(parent.seps[:i], parent.seps[i+1:]...)
	parent.children = append(parent.children[:i+1], parent.children[i+2:]...)
}

// SeekEQ returns the RIDs stored under exactly key.
func (t *Tree) SeekEQ(key []byte) []storage.RID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []storage.RID
	t.scanLocked(key, key, true, true, func(_ []byte, rid storage.RID) bool {
		out = append(out, rid)
		return true
	})
	return out
}

// Scan visits entries with lo <= key <= hi in order. nil bounds are
// unbounded; loInc/hiInc select inclusive or exclusive endpoints. The
// callback returns false to stop. The tree latch is held across the whole
// scan, so the callback must not mutate this tree.
func (t *Tree) Scan(lo, hi []byte, loInc, hiInc bool, fn func(key []byte, rid storage.RID) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.scanLocked(lo, hi, loInc, hiInc, fn)
}

func (t *Tree) scanLocked(lo, hi []byte, loInc, hiInc bool, fn func(key []byte, rid storage.RID) bool) {
	// Descend left on key equality so leading duplicates are not skipped.
	n := t.root
	for !n.leaf {
		i := 0
		if lo != nil {
			for i < len(n.seps) && bytes.Compare(lo, n.seps[i].key) > 0 {
				i++
			}
		}
		n = n.children[i]
	}
	for n != nil {
		for _, e := range n.entries {
			if lo != nil {
				c := bytes.Compare(e.key, lo)
				if c < 0 || (c == 0 && !loInc) {
					continue
				}
			}
			if hi != nil {
				c := bytes.Compare(e.key, hi)
				if c > 0 || (c == 0 && !hiInc) {
					return
				}
			}
			if !fn(e.key, e.rid) {
				return
			}
		}
		n = n.next
	}
}

// iterBatch is how many entries an Iterator buffers per latch acquisition:
// large enough to amortize the RLock, small enough to keep writers flowing.
const iterBatch = 64

// Iterator streams a bounded range incrementally: each refill takes the tree
// latch, buffers up to iterBatch in-range entries, and remembers the last
// (key, rid) composite handed out; the next refill re-seeks strictly past it.
// Structural mutation between refills is therefore safe — concurrent writers
// under MVCC only add or remove entries the scanning snapshot cannot see
// anyway. The executor's streaming index scans pull batches off it.
type Iterator struct {
	t            *Tree
	lo, hi       []byte
	loInc, hiInc bool
	started      bool
	last         entry // last buffered composite; resume point
	buf          []entry
	i            int
	done         bool
}

// Iter positions an iterator at the first entry with key >= lo (key > lo
// when loInc is false) ranging up to hi under the same bound semantics as
// Scan. nil bounds are unbounded.
func (t *Tree) Iter(lo, hi []byte, loInc, hiInc bool) *Iterator {
	return &Iterator{t: t, lo: lo, hi: hi, loInc: loInc, hiInc: hiInc}
}

// Next returns the next in-range entry, or ok=false when the range is
// exhausted. Returned keys are immutable tree-owned byte slices and stay
// valid indefinitely.
func (it *Iterator) Next() (key []byte, rid storage.RID, ok bool) {
	if it.i >= len(it.buf) {
		if it.done {
			return nil, storage.RID{}, false
		}
		it.refill()
		if it.i >= len(it.buf) {
			return nil, storage.RID{}, false
		}
	}
	e := it.buf[it.i]
	it.i++
	return e.key, e.rid, true
}

// refill buffers the next batch of in-range entries under the tree latch.
func (it *Iterator) refill() {
	it.buf = it.buf[:0]
	it.i = 0
	t := it.t
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Descend to the leaf where the range (or the resume point) starts,
	// going left on key equality so leading duplicates are not skipped.
	seek := it.lo
	if it.started {
		seek = it.last.key
	}
	n := t.root
	for !n.leaf {
		i := 0
		if seek != nil {
			for i < len(n.seps) && bytes.Compare(seek, n.seps[i].key) > 0 {
				i++
			}
		}
		n = n.children[i]
	}
	for n != nil {
		for _, e := range n.entries {
			if it.started {
				if compareEntry(e, it.last) <= 0 {
					continue
				}
			} else if it.lo != nil {
				c := bytes.Compare(e.key, it.lo)
				if c < 0 || (c == 0 && !it.loInc) {
					continue
				}
			}
			if it.hi != nil {
				c := bytes.Compare(e.key, it.hi)
				if c > 0 || (c == 0 && !it.hiInc) {
					it.done = true
					return
				}
			}
			it.buf = append(it.buf, e)
			if len(it.buf) >= iterBatch {
				it.last = e
				it.started = true
				return
			}
		}
		n = n.next
	}
	if len(it.buf) > 0 {
		it.last = it.buf[len(it.buf)-1]
		it.started = true
	}
	it.done = true
}

// Validate checks structural invariants (ordering, occupancy, leaf chain,
// separator correctness). Tests call it after mutation storms.
func (t *Tree) Validate() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil {
		return fmt.Errorf("btree: nil root")
	}
	count := 0
	var prev *entry
	err := t.validateNode(t.root, nil, nil, true, func(e entry) error {
		if prev != nil && compareEntry(*prev, e) >= 0 {
			return fmt.Errorf("btree: leaf chain out of order")
		}
		cp := e
		prev = &cp
		count++
		return nil
	})
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d entries reachable", t.size, count)
	}
	return nil
}

func (t *Tree) validateNode(n *node, lo, hi *entry, isRoot bool, visit func(entry) error) error {
	if n.leaf {
		if !isRoot && len(n.entries) < minEntries {
			return fmt.Errorf("btree: leaf underflow (%d entries)", len(n.entries))
		}
		for _, e := range n.entries {
			if lo != nil && compareEntry(e, *lo) < 0 {
				return fmt.Errorf("btree: entry below separator")
			}
			if hi != nil && compareEntry(e, *hi) >= 0 {
				return fmt.Errorf("btree: entry above separator")
			}
			if err := visit(e); err != nil {
				return err
			}
		}
		return nil
	}
	if len(n.children) != len(n.seps)+1 {
		return fmt.Errorf("btree: internal node fan-out mismatch")
	}
	if !isRoot && len(n.children) < minEntries {
		return fmt.Errorf("btree: internal underflow (%d children)", len(n.children))
	}
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = &n.seps[i-1]
		}
		if i < len(n.seps) {
			chi = &n.seps[i]
		}
		if err := t.validateNode(c, clo, chi, false, visit); err != nil {
			return err
		}
	}
	return nil
}
