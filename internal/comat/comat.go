// Package comat is the composite-object materialization cache — the shared,
// invalidation-aware layer between the XNF evaluator and the engine that the
// paper's working-set model implies: applications check out composite
// objects repeatedly, so repeated checkouts should run at cache-hit speed
// instead of re-deriving every component table and relationship.
//
// The cache holds two kinds of artifacts, both stamped with the catalog's
// schema/statistics epoch:
//
//   - Compiled XNF specs (the QGM payload of an XNF box after parsing and
//     name resolution), keyed like the prepared-plan cache by normalized
//     statement text (or view name). Checkouts return deep clones, because
//     the query-rewrite phase mutates box trees in place during evaluation.
//
//   - Materialized composite objects, keyed the same way, each carrying its
//     dependency set: the base tables the materialization read, with their
//     DML version counters at materialization time. DML to any component
//     table bumps that table's version (engine/dml.go), which invalidates
//     exactly the cached COs that read it — entries over disjoint tables
//     keep serving hits. Entries live in an LRU bounded by a resident-byte
//     budget.
//
// Materialization is single-flight: when several sessions miss on the same
// key concurrently, one runs the evaluator and the rest wait for its result.
// Cached COs are shared and read-only; callers that hand rows to
// applications clone first (CloneCO).
package comat

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"sqlxnf/internal/qgm"
	"sqlxnf/internal/types"
	"sqlxnf/internal/xnf"
)

// DefaultBudget is the resident-byte budget when the engine does not
// configure one (32 MiB).
const DefaultBudget = 32 << 20

// TableDep records one base-table dependency of a materialized CO: the
// table and its DML version counter at materialization time.
type TableDep struct {
	Table   string
	Version uint64
}

// VersionFn reports a table's current DML version; ok=false means the table
// no longer exists (which invalidates dependents like any version change).
type VersionFn func(table string) (uint64, bool)

// Stats is a snapshot of cache activity.
type Stats struct {
	// CO-cache counters.
	Hits          int64
	Misses        int64
	Invalidations int64 // entries dropped because a dependency's version moved (or its table vanished)
	Evictions     int64 // entries dropped by the LRU byte budget or an epoch change
	Waits         int64 // sessions that waited on another session's materialization
	Entries       int
	ResidentBytes int64
	// Spec-cache counters.
	SpecHits   int64
	SpecMisses int64
}

// Entry is a read-only view of one cached CO for introspection (\costats).
type Entry struct {
	Key    string
	DepKey string
	Bytes  int64
	Hits   int64
	Tuples int
}

type entry struct {
	key    string
	epoch  uint64
	depKey string // EncodeDepKey of the dependency snapshot
	// deps is depKey decoded once at store time (the canonical round trip
	// the fuzz target pins); validation walks this instead of re-decoding
	// per hit.
	deps  []TableDep
	co    *xnf.CO
	bytes int64
	hits  atomic.Int64
}

// flight is one in-progress materialization; concurrent fetchers of the
// same key wait on done instead of re-running the evaluator.
type flight struct {
	done chan struct{}
	co   *xnf.CO
	deps []TableDep
	err  error
}

type specEntry struct {
	epoch uint64
	spec  *qgm.XNFSpec
}

// Cache is the composite-object materialization cache. Safe for concurrent
// use by many sessions.
type Cache struct {
	mu       sync.Mutex
	budget   int64
	lru      *list.List // of *entry; front = most recently used
	entries  map[string]*list.Element
	flights  map[string]*flight
	specs    map[string]*specEntry
	resident int64

	hits, misses, invalidations, evictions, waits int64
	specHits, specMisses                          int64
}

// New creates a cache with the given resident-byte budget (0 means
// DefaultBudget).
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Cache{
		budget:  budget,
		lru:     list.New(),
		entries: map[string]*list.Element{},
		flights: map[string]*flight{},
		specs:   map[string]*specEntry{},
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations,
		Evictions: c.evictions, Waits: c.waits,
		Entries: len(c.entries), ResidentBytes: c.resident,
		SpecHits: c.specHits, SpecMisses: c.specMisses,
	}
}

// Entries lists cached COs, most recently used first.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, Entry{Key: e.key, DepKey: e.depKey, Bytes: e.bytes,
			Hits: e.hits.Load(), Tuples: e.co.Size()})
	}
	return out
}

// Spec returns the cached compiled spec for key (a deep clone, private to
// the caller), building and caching it on miss. Entries are epoch-stamped:
// DDL and ANALYZE invalidate them wholesale.
func (c *Cache) Spec(key string, epoch uint64, build func() (*qgm.XNFSpec, error)) (*qgm.XNFSpec, error) {
	c.mu.Lock()
	if se, ok := c.specs[key]; ok && se.epoch == epoch {
		c.specHits++
		spec := se.spec
		c.mu.Unlock()
		return qgm.CloneXNFSpec(spec), nil
	}
	c.specMisses++
	c.mu.Unlock()
	spec, err := build()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.specs[key] = &specEntry{epoch: epoch, spec: spec}
	if len(c.specs) > maxSpecs {
		// Spec sets are small (one per view / statement shape); a full reset
		// on overflow beats LRU bookkeeping, mirroring the engine's parsed-
		// statement cache.
		c.specs = map[string]*specEntry{key: c.specs[key]}
	}
	c.mu.Unlock()
	return qgm.CloneXNFSpec(spec), nil
}

// maxSpecs bounds the spec cache.
const maxSpecs = 512

// PeekSpec returns the cached spec itself — NOT a clone — for read-only
// traversal (dependency-table enumeration). The stored spec is pristine
// (only clones are ever evaluated or rewritten), so concurrent reads are
// safe; callers must not mutate or evaluate it. Like PeekDeps, it does not
// touch the hit/miss counters — those count checkouts, not metadata walks.
func (c *Cache) PeekSpec(key string, epoch uint64) (*qgm.XNFSpec, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	se, ok := c.specs[key]
	if !ok || se.epoch != epoch {
		return nil, false
	}
	return se.spec, true
}

// PeekDeps returns the dependency table set of a cached CO without touching
// hit/miss counters — the engine uses it to take the right shared locks
// before validating the entry.
func (c *Cache) PeekDeps(key string, epoch uint64) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if e.epoch != epoch {
		return nil, false
	}
	tables := make([]string, len(e.deps))
	for i, d := range e.deps {
		tables[i] = d.Table
	}
	return tables, true
}

// Get returns the cached CO for key when it is current at epoch and under
// vf. The caller must hold shared locks on the entry's dependency tables
// (PeekDeps) so the validation cannot race DML. The returned CO is shared:
// read-only for the caller.
func (c *Cache) Get(key string, epoch uint64, vf VersionFn) (*xnf.CO, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.validateLocked(key, epoch, vf)
	if e == nil {
		return nil, false
	}
	c.hits++
	e.hits.Add(1)
	return e.co, true
}

// validateLocked returns the entry for key if current, evicting stale ones.
// Caller holds c.mu.
func (c *Cache) validateLocked(key string, epoch uint64, vf VersionFn) *entry {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	e := el.Value.(*entry)
	if e.epoch != epoch {
		c.removeLocked(el, e)
		c.evictions++
		return nil
	}
	for _, d := range e.deps {
		cur, ok := vf(d.Table)
		if !ok || cur != d.Version {
			c.removeLocked(el, e)
			c.invalidations++
			return nil
		}
	}
	c.lru.MoveToFront(el)
	return e
}

func (c *Cache) removeLocked(el *list.Element, e *entry) {
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.resident -= e.bytes
}

// FetchCO returns the CO for key, serving the cached materialization when
// current and otherwise materializing through mat with single-flight. The
// caller must hold shared locks on every base table the spec reads for the
// whole fetch — that is what pins the dependency versions while the entry
// validates or materializes, and what makes a peer flight's result valid
// for its waiters. mat returns the CO plus the dependency snapshot read
// under those same locks. hit reports whether the cached copy was served.
//
// ctx bounds the wait on a peer flight: a cancelled waiter detaches and
// returns ctx.Err() while the runner continues unaffected (its result still
// lands in the cache for future fetchers). The runner itself is bounded by
// its own context through mat, not by this one. A nil ctx never cancels.
//
// mat may return nil deps with a non-nil CO to mark the result private:
// it is served to this fetch (and any waiters, who must re-validate it
// against their own view) but never stored.
func (c *Cache) FetchCO(ctx context.Context, key string, epoch uint64, vf VersionFn,
	mat func() (*xnf.CO, []TableDep, error)) (co *xnf.CO, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		if e := c.validateLocked(key, epoch, vf); e != nil {
			c.hits++
			e.hits.Add(1)
			co := e.co
			c.mu.Unlock()
			return co, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.waits++
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				// Detach: the flight's runner keeps going and resolves the
				// flight for the remaining waiters.
				return nil, false, ctx.Err()
			}
			if f.err != nil {
				// The runner's failure may be private to its transaction
				// (e.g. a deadlock abort); retry — the next round either
				// finds a fresh entry, joins a newer flight, or runs the
				// materialization itself.
				continue
			}
			// The runner's result is current for this waiter too: both held
			// shared locks on the dependency tables across the wait, so no
			// DML intervened between the runner's reads and now.
			return f.co, false, nil
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses++
		c.mu.Unlock()

		co, hit, err := c.runFlight(key, epoch, f, mat)
		if err != nil {
			return nil, false, err
		}
		return co, hit, nil
	}
}

// runFlight executes one materialization and resolves its flight. The
// deferred cleanup also runs when mat panics (an application recovering
// panics around Exec must not leave waiters blocked on a dead flight, or
// the key permanently wedged).
func (c *Cache) runFlight(key string, epoch uint64, f *flight,
	mat func() (*xnf.CO, []TableDep, error)) (co *xnf.CO, hit bool, err error) {
	done := false
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if !done {
			// Unwinding on a panic: fail the flight so waiters retry.
			f.err = fmt.Errorf("comat: materialization of %q panicked", key)
		} else if err != nil {
			f.err = err
		} else {
			f.co = co
			// Nil deps mark a private result (the runner materialized under a
			// snapshot that no longer matches latest-committed state): serve
			// it to this flight's fetchers but store nothing — a stored entry
			// with an empty dependency set would validate forever.
			if f.deps != nil {
				c.storeLocked(key, epoch, f.deps, co)
			}
		}
		close(f.done)
		c.mu.Unlock()
	}()
	co, deps, err := mat()
	f.deps = deps
	done = true
	return co, false, err
}

// storeLocked inserts a fresh materialization and enforces the byte budget.
// Caller holds c.mu.
func (c *Cache) storeLocked(key string, epoch uint64, deps []TableDep, co *xnf.CO) {
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el, el.Value.(*entry))
	}
	// Encode and decode the dependency snapshot through the canonical key:
	// the stored deps are exactly what the key says (and a key that cannot
	// round-trip must not produce a servable entry).
	depKey := EncodeDepKey(deps)
	canonical, err := DecodeDepKey(depKey)
	if err != nil {
		return
	}
	e := &entry{key: key, epoch: epoch, depKey: depKey, deps: canonical, co: co, bytes: coBytes(co)}
	c.entries[key] = c.lru.PushFront(e)
	c.resident += e.bytes
	for c.resident > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		be := back.Value.(*entry)
		c.removeLocked(back, be)
		c.evictions++
	}
}

// CloneCO deep-copies a composite object. The cache's resident COs are
// shared across sessions and must stay immutable; anything handed to an
// application (which may edit rows or load them into the navigation cache)
// gets a clone.
func CloneCO(co *xnf.CO) *xnf.CO {
	out := &xnf.CO{}
	for _, n := range co.Nodes {
		nn := &xnf.NodeInstance{
			Name: n.Name, Schema: n.Schema,
			BaseTable: n.BaseTable, Root: n.Root,
			ColMap: append([]int(nil), n.ColMap...),
		}
		nn.Rows = make([]types.Row, len(n.Rows))
		arity := len(n.Schema)
		if uniformArity(n.Rows, arity) {
			// One backing array for the whole node instead of one
			// allocation per row — checkouts clone on every hit.
			backing := make([]types.Value, len(n.Rows)*arity)
			for i, r := range n.Rows {
				row := backing[i*arity : (i+1)*arity : (i+1)*arity]
				copy(row, r)
				nn.Rows[i] = row
			}
		} else {
			for i, r := range n.Rows {
				nn.Rows[i] = r.Clone()
			}
		}
		nn.RIDs = append(nn.RIDs[:0], n.RIDs...)
		out.Nodes = append(out.Nodes, nn)
	}
	for _, e := range co.Edges {
		ne := &xnf.EdgeInstance{
			Name: e.Name, Parent: e.Parent, Child: e.Child,
			AttrSchema:  e.AttrSchema,
			FKParentCol: e.FKParentCol, FKChildCol: e.FKChildCol,
			LinkTable: e.LinkTable, LinkParentCol: e.LinkParentCol,
			LinkChildCol: e.LinkChildCol, LinkParentKey: e.LinkParentKey,
			LinkChildKey: e.LinkChildKey,
		}
		ne.Conns = make([]xnf.Conn, len(e.Conns))
		for i, cn := range e.Conns {
			nc := cn
			if cn.Attrs != nil {
				nc.Attrs = cn.Attrs.Clone()
			}
			ne.Conns[i] = nc
		}
		out.Edges = append(out.Edges, ne)
	}
	return out
}

// uniformArity reports whether every row has exactly the given arity.
func uniformArity(rows []types.Row, arity int) bool {
	for _, r := range rows {
		if len(r) != arity {
			return false
		}
	}
	return true
}

// coBytes approximates a CO's resident size for the LRU budget.
func coBytes(co *xnf.CO) int64 {
	const (
		rowOverhead  = 24 // slice header
		valueSize    = 48 // types.Value struct
		connSize     = 48
		nodeOverhead = 256
	)
	var b int64
	for _, n := range co.Nodes {
		b += nodeOverhead
		for _, r := range n.Rows {
			b += rowOverhead + int64(len(r))*valueSize
			for _, v := range r {
				if v.Kind() == types.KindString {
					b += int64(len(v.Str()))
				}
			}
		}
		b += int64(len(n.RIDs)) * 8
	}
	for _, e := range co.Edges {
		b += nodeOverhead + int64(len(e.Conns))*connSize
		for _, cn := range e.Conns {
			b += int64(len(cn.Attrs)) * valueSize
		}
	}
	return b
}
