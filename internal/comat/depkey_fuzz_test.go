package comat

import (
	"strings"
	"testing"
)

// FuzzDepKey holds the dependency-key encoder to its contract: decoding
// never panics, anything that decodes re-encodes to the identical canonical
// string (so a key can never validate against a different dependency set),
// and encoding a decoded set is lossless.
func FuzzDepKey(f *testing.F) {
	f.Add("EMP@1;DEPT@2")
	f.Add("")
	f.Add(`WE\;IRD@0`)
	f.Add(`A\\@18446744073709551615`)
	f.Add("EMP@01")
	f.Add("@0")
	f.Add("EMP@1;;DEPT@2")
	f.Add(strings.Repeat("T@1;", 50) + "Z@9")
	f.Fuzz(func(t *testing.T, s string) {
		deps, err := DecodeDepKey(s)
		if err != nil {
			return // malformed input is rejected, never guessed at
		}
		enc := EncodeDepKey(deps)
		deps2, err := DecodeDepKey(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical form %q failed: %v", enc, err)
		}
		if EncodeDepKey(deps2) != enc {
			t.Fatalf("canonical form is not a fixpoint: %q -> %q", enc, EncodeDepKey(deps2))
		}
		if len(deps2) != len(deps) {
			t.Fatalf("round trip changed arity: %d -> %d", len(deps), len(deps2))
		}
		// The decoded multiset must match: compare after canonical sort via
		// encoding of each singleton.
		seen := map[TableDep]int{}
		for _, d := range deps {
			seen[d]++
		}
		for _, d := range deps2 {
			seen[d]--
			if seen[d] < 0 {
				t.Fatalf("round trip invented dependency %+v (input %q)", d, s)
			}
		}
	})
}
