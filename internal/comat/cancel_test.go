package comat

import (
	"context"
	"errors"
	"testing"
	"time"

	"sqlxnf/internal/xnf"
)

// TestCancelledWaiterDetaches: a waiter piggybacking on an in-flight
// materialization detaches when its context dies, while the runner completes
// and stores the entry normally — a cancelled waiter never poisons or aborts
// someone else's flight.
func TestCancelledWaiterDetaches(t *testing.T) {
	c := New(0)
	vm := &versionMap{m: map[string]uint64{"T": 1}}
	release := make(chan struct{})
	started := make(chan struct{})
	runnerDone := make(chan error, 1)
	go func() {
		_, _, err := c.FetchCO(context.Background(), "K", 1, vm.fn, func() (*xnf.CO, []TableDep, error) {
			close(started)
			<-release
			return testCO(4), []TableDep{{Table: "T", Version: 1}}, nil
		})
		runnerDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.FetchCO(ctx, "K", 1, vm.fn, func() (*xnf.CO, []TableDep, error) {
			t.Error("waiter ran its own materialization while a flight was live")
			return testCO(1), nil, nil
		})
		waiterDone <- err
	}()
	select {
	case err := <-waiterDone:
		t.Fatalf("waiter returned before cancel: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter still blocked on the flight")
	}

	// The runner is unaffected: it finishes, stores, and the next fetch hits.
	close(release)
	if err := <-runnerDone; err != nil {
		t.Fatalf("runner failed after waiter cancel: %v", err)
	}
	co, hit, err := c.FetchCO(context.Background(), "K", 1, vm.fn, func() (*xnf.CO, []TableDep, error) {
		t.Error("re-fetch re-materialized; entry should be resident")
		return testCO(1), nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("post-flight fetch: hit=%v err=%v, want cached hit", hit, err)
	}
	if len(co.Nodes[0].Rows) != 4 {
		t.Fatalf("cached CO has %d rows, want 4", len(co.Nodes[0].Rows))
	}
}

// TestPreCancelledFetch: a dead context short-circuits before any flight or
// cache work.
func TestPreCancelledFetch(t *testing.T) {
	c := New(0)
	vm := &versionMap{m: map[string]uint64{"T": 1}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.FetchCO(ctx, "K", 1, vm.fn, func() (*xnf.CO, []TableDep, error) {
		t.Error("materializer ran under a dead context")
		return testCO(1), nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled fetch returned %v, want context.Canceled", err)
	}
}

// TestFailedMaterializationNeverCached: an error from the materializer (a
// fault-injection scenario) leaves no entry behind — the next fetch runs the
// materializer again and can succeed.
func TestFailedMaterializationNeverCached(t *testing.T) {
	c := New(0)
	vm := &versionMap{m: map[string]uint64{"T": 1}}
	boom := errors.New("injected materialization failure")
	_, _, err := c.FetchCO(context.Background(), "K", 1, vm.fn, func() (*xnf.CO, []TableDep, error) {
		return nil, nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("failed materialization returned %v, want injected error", err)
	}
	co, hit, err := c.FetchCO(context.Background(), "K", 1, vm.fn, func() (*xnf.CO, []TableDep, error) {
		return testCO(2), []TableDep{{Table: "T", Version: 1}}, nil
	})
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if hit {
		t.Fatal("retry reported a cache hit; the failed flight must not be cached")
	}
	if len(co.Nodes[0].Rows) != 2 {
		t.Fatalf("retry CO has %d rows, want 2", len(co.Nodes[0].Rows))
	}
}
