package comat

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The dependency key is the canonical encoding of a CO's dependency
// snapshot: the component tables it read with their DML versions at
// materialization time. It is stored on every cache entry (validation
// decodes it and compares against current versions) and surfaced verbatim
// by \costats, so the encoding must be injective and round-trip exactly —
// FuzzDepKey in depkey_fuzz_test.go holds it to that.
//
// Format: entries sorted by table name, joined with ';', each
// `<table>@<version>`. Table names escape '\', ';' and '@' with a leading
// backslash, so arbitrary (e.g. quoted) identifiers cannot collide with the
// structure.

// EncodeDepKey canonically encodes a dependency snapshot. The input is not
// mutated; entries are sorted by table name (ties broken by version) so
// equal sets encode equally regardless of order.
func EncodeDepKey(deps []TableDep) string {
	sorted := append([]TableDep(nil), deps...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Table != sorted[j].Table {
			return sorted[i].Table < sorted[j].Table
		}
		return sorted[i].Version < sorted[j].Version
	})
	var b strings.Builder
	for i, d := range sorted {
		if i > 0 {
			b.WriteByte(';')
		}
		for j := 0; j < len(d.Table); j++ {
			ch := d.Table[j]
			if ch == '\\' || ch == ';' || ch == '@' {
				b.WriteByte('\\')
			}
			b.WriteByte(ch)
		}
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(d.Version, 10))
	}
	return b.String()
}

// DecodeDepKey inverts EncodeDepKey. It rejects malformed input instead of
// guessing — a corrupted key must invalidate its entry, never validate it.
func DecodeDepKey(s string) ([]TableDep, error) {
	if s == "" {
		return nil, nil
	}
	var deps []TableDep
	var table strings.Builder
	i := 0
	for {
		table.Reset()
		// Scan the (escaped) table name up to an unescaped '@'.
		for {
			if i >= len(s) {
				return nil, fmt.Errorf("comat: dep key truncated in table name at byte %d", i)
			}
			ch := s[i]
			if ch == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("comat: dep key ends in escape at byte %d", i)
				}
				next := s[i+1]
				if next != '\\' && next != ';' && next != '@' {
					return nil, fmt.Errorf("comat: invalid escape \\%c at byte %d", next, i)
				}
				table.WriteByte(next)
				i += 2
				continue
			}
			if ch == ';' {
				return nil, fmt.Errorf("comat: dep key missing version at byte %d", i)
			}
			if ch == '@' {
				i++
				break
			}
			table.WriteByte(ch)
			i++
		}
		// Scan the version digits up to ';' or end.
		start := i
		for i < len(s) && s[i] != ';' {
			i++
		}
		ver, err := strconv.ParseUint(s[start:i], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("comat: dep key has bad version %q: %v", s[start:i], err)
		}
		// Reject non-canonical digits (leading zeros, "+") so decode∘encode
		// is the identity on valid keys.
		if canonical := strconv.FormatUint(ver, 10); canonical != s[start:i] {
			return nil, fmt.Errorf("comat: dep key has non-canonical version %q", s[start:i])
		}
		deps = append(deps, TableDep{Table: table.String(), Version: ver})
		if i == len(s) {
			return deps, nil
		}
		i++ // skip ';'
		if i == len(s) {
			return nil, fmt.Errorf("comat: dep key has trailing separator")
		}
	}
}
