package comat

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlxnf/internal/qgm"
	"sqlxnf/internal/types"
	"sqlxnf/internal/xnf"
)

// testCO builds a one-node CO with n integer tuples.
func testCO(n int) *xnf.CO {
	ni := &xnf.NodeInstance{
		Name:   "X",
		Schema: types.Schema{{Name: "a", Kind: types.KindInt}},
		Root:   true,
	}
	for i := 0; i < n; i++ {
		ni.Rows = append(ni.Rows, types.Row{types.NewInt(int64(i))})
	}
	return &xnf.CO{Nodes: []*xnf.NodeInstance{ni}}
}

// versionMap is a VersionFn over a mutable map.
type versionMap struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (vm *versionMap) fn(table string) (uint64, bool) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	v, ok := vm.m[table]
	return v, ok
}

func (vm *versionMap) bump(table string) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.m[table]++
}

func TestDepKeyRoundTrip(t *testing.T) {
	cases := [][]TableDep{
		nil,
		{{Table: "EMP", Version: 0}},
		{{Table: "EMP", Version: 7}, {Table: "DEPT", Version: 12}},
		{{Table: `WEIRD;NAME`, Version: 1}, {Table: `ESC\@PED`, Version: 2}},
		{{Table: "", Version: 3}},
	}
	for _, deps := range cases {
		enc := EncodeDepKey(deps)
		dec, err := DecodeDepKey(enc)
		if err != nil {
			t.Fatalf("DecodeDepKey(%q): %v", enc, err)
		}
		// Encode sorts; compare canonically.
		if EncodeDepKey(dec) != enc {
			t.Fatalf("round trip drifted: %q -> %v -> %q", enc, dec, EncodeDepKey(dec))
		}
	}
	// Order-insensitivity.
	a := EncodeDepKey([]TableDep{{Table: "A", Version: 1}, {Table: "B", Version: 2}})
	b := EncodeDepKey([]TableDep{{Table: "B", Version: 2}, {Table: "A", Version: 1}})
	if a != b {
		t.Fatalf("encoding is order-sensitive: %q vs %q", a, b)
	}
	// Malformed inputs must error, not validate.
	for _, bad := range []string{"EMP", "EMP@", "EMP@x", "EMP@1;", "@1;EMP@2x", `EMP\q@1`, "EMP@01"} {
		if _, err := DecodeDepKey(bad); err == nil {
			t.Errorf("DecodeDepKey(%q) accepted malformed input", bad)
		}
	}
}

func TestFetchHitAndFineGrainedInvalidation(t *testing.T) {
	c := New(0)
	vm := &versionMap{m: map[string]uint64{"T1": 5, "T2": 9}}
	var mats atomic.Int64
	fetch := func(key, table string) *xnf.CO {
		co, _, err := c.FetchCO(context.Background(), key, 1, vm.fn, func() (*xnf.CO, []TableDep, error) {
			mats.Add(1)
			v, _ := vm.fn(table)
			return testCO(3), []TableDep{{Table: table, Version: v}}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return co
	}
	co1 := fetch("K1", "T1")
	fetch("K2", "T2")
	if got := mats.Load(); got != 2 {
		t.Fatalf("materializations = %d, want 2", got)
	}
	// Repeats hit.
	if co := fetch("K1", "T1"); co != co1 {
		t.Fatal("hit did not serve the cached CO")
	}
	fetch("K2", "T2")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses / 2 entries", st)
	}
	// DML to T1 invalidates K1 only; K2 keeps hitting.
	vm.bump("T1")
	fetch("K2", "T2")
	fetch("K1", "T1")
	st = c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1 (exactly the dependent entry)", st.Invalidations)
	}
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("stats after bump = %+v", st)
	}
	// A dropped table invalidates too.
	vm.mu.Lock()
	delete(vm.m, "T2")
	vm.m["T2X"] = 1
	vm.mu.Unlock()
	if _, ok := c.Get("K2", 1, vm.fn); ok {
		t.Fatal("entry over a dropped table validated")
	}
}

func TestEpochEvictsEverything(t *testing.T) {
	c := New(0)
	vm := &versionMap{m: map[string]uint64{"T": 1}}
	mat := func() (*xnf.CO, []TableDep, error) {
		return testCO(1), []TableDep{{Table: "T", Version: 1}}, nil
	}
	if _, _, err := c.FetchCO(context.Background(), "K", 1, vm.fn, mat); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("K", 2, vm.fn); ok {
		t.Fatal("entry survived an epoch change")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestLRUBudgetEviction(t *testing.T) {
	one := coBytes(testCO(100))
	c := New(3*one + one/2) // room for three entries
	vm := &versionMap{m: map[string]uint64{"T": 1}}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("K%d", i)
		_, _, err := c.FetchCO(context.Background(), key, 1, vm.fn, func() (*xnf.CO, []TableDep, error) {
			return testCO(100), []TableDep{{Table: "T", Version: 1}}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3 under the byte budget", st.Entries)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if st.ResidentBytes > c.budget {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, c.budget)
	}
	// The survivors are the most recently used.
	ents := c.Entries()
	if len(ents) != 3 || ents[0].Key != "K4" || ents[2].Key != "K2" {
		t.Fatalf("unexpected LRU order: %+v", ents)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New(0)
	vm := &versionMap{m: map[string]uint64{"T": 1}}
	var mats atomic.Int64
	const n = 16
	var wg sync.WaitGroup
	cos := make([]*xnf.CO, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			co, _, err := c.FetchCO(context.Background(), "K", 1, vm.fn, func() (*xnf.CO, []TableDep, error) {
				mats.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the window
				return testCO(10), []TableDep{{Table: "T", Version: 1}}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			cos[i] = co
		}(i)
	}
	wg.Wait()
	if got := mats.Load(); got != 1 {
		t.Fatalf("materializations = %d, want 1 (single-flight)", got)
	}
	for i := 1; i < n; i++ {
		if cos[i] != cos[0] {
			t.Fatal("flight waiters received different COs")
		}
	}
	st := c.Stats()
	if st.Waits == 0 {
		t.Fatalf("no waits recorded under concurrent fetch: %+v", st)
	}
}

func TestSpecCacheReturnsPrivateClones(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	build := func() (*qgm.XNFSpec, error) {
		builds.Add(1)
		return &qgm.XNFSpec{
			Nodes: []*qgm.XNFNode{{Name: "X", Def: &qgm.Box{Kind: qgm.KindSelect, Name: "sel"}}},
			Take:  qgm.XNFTakeSpec{All: true},
		}, nil
	}
	s1, err := c.Spec("V", 1, build)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Spec("V", 1, build)
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1", builds.Load())
	}
	if s1 == s2 || s1.Nodes[0] == s2.Nodes[0] || s1.Nodes[0].Def == s2.Nodes[0].Def {
		t.Fatal("spec checkouts alias shared structure")
	}
	// Epoch change rebuilds.
	if _, err := c.Spec("V", 2, build); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds after epoch change = %d, want 2", builds.Load())
	}
	st := c.Stats()
	if st.SpecHits != 1 || st.SpecMisses != 2 {
		t.Fatalf("spec stats = %+v", st)
	}
}

func TestCloneCOIsDeep(t *testing.T) {
	co := testCO(2)
	co.Edges = append(co.Edges, &xnf.EdgeInstance{
		Name: "e", Parent: "X", Child: "X",
		Conns: []xnf.Conn{{P: 0, C: 1, Attrs: types.Row{types.NewString("a")}}},
	})
	cp := CloneCO(co)
	if !reflect.DeepEqual(co.Nodes[0].Rows, cp.Nodes[0].Rows) {
		t.Fatal("clone rows differ")
	}
	cp.Nodes[0].Rows[0][0] = types.NewInt(99)
	cp.Edges[0].Conns[0].Attrs[0] = types.NewString("mutated")
	if co.Nodes[0].Rows[0][0].Int() != 0 {
		t.Fatal("mutating the clone reached the original rows")
	}
	if co.Edges[0].Conns[0].Attrs[0].Str() != "a" {
		t.Fatal("mutating the clone reached the original attrs")
	}
}
