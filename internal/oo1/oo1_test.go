package oo1

import (
	"math/rand"
	"testing"

	"sqlxnf/internal/engine"
)

func TestLoadAndTraversalAgreement(t *testing.T) {
	s := engine.NewDefault().Session()
	cfg := Config{Parts: 200, Seed: 5}
	if err := Load(s, cfg); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Exec("SELECT COUNT(*) FROM PART")
	if r.Rows[0][0].Int() != 200 {
		t.Fatalf("parts = %v", r.Rows[0][0])
	}
	r, _ = s.Exec("SELECT COUNT(*) FROM CONN")
	if r.Rows[0][0].Int() != 600 {
		t.Fatalf("conns = %v", r.Rows[0][0])
	}
	c, err := LoadCache(s)
	if err != nil {
		t.Fatal(err)
	}
	// Every part is reachable via the anchor.
	if got := len(c.Node("Xpart").Tuples); got != 200 {
		t.Fatalf("cached parts = %d", got)
	}
	// Both arms produce identical traversal results (same visits, same sum).
	for _, start := range []int{1, 57, 133} {
		rc, err := TraverseCache(c, start, 3)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := TraverseSQL(s, start, 3)
		if err != nil {
			t.Fatal(err)
		}
		if rc != rs {
			t.Errorf("start %d: cache=%+v sql=%+v", start, rc, rs)
		}
		// Depth-3 visits: 1 + 3 + 9 + 27 = 40 (counting repeats, OO1 style).
		if rc.Visited != 40 {
			t.Errorf("start %d visited %d, want 40", start, rc.Visited)
		}
	}
}

func TestLookupAgreement(t *testing.T) {
	s := engine.NewDefault().Session()
	cfg := Config{Parts: 100, Seed: 6}
	if err := Load(s, cfg); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCache(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := LookupCache(c, rand.New(rand.NewSource(9)), cfg.Parts, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LookupSQL(s, rand.New(rand.NewSource(9)), cfg.Parts, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("lookup sums differ: %d vs %d", a, b)
	}
}

func TestInsertSQL(t *testing.T) {
	s := engine.NewDefault().Session()
	cfg := Config{Parts: 50, Seed: 7}
	if err := Load(s, cfg); err != nil {
		t.Fatal(err)
	}
	if err := InsertSQL(s, rand.New(rand.NewSource(1)), cfg.Parts+1, 10, cfg.Parts); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Exec("SELECT COUNT(*) FROM PART")
	if r.Rows[0][0].Int() != 60 {
		t.Errorf("parts after insert = %v", r.Rows[0][0])
	}
	r, _ = s.Exec("SELECT COUNT(*) FROM CONN")
	if r.Rows[0][0].Int() != 180 {
		t.Errorf("conns after insert = %v", r.Rows[0][0])
	}
}
