// Package oo1 implements the Cattell OO1 ("Object Operations, version 1")
// benchmark the paper invokes for its headline claim: XNF cache navigation
// improves over the regular SQL DBMS interface by orders of magnitude,
// "comparable to the performance improvement of OODBMS over relational
// DBMSs reported in Cattell's benchmark [Gr91]".
//
// OO1's database is a parts graph: N parts, each with exactly three
// outgoing connections to other parts (90% to "nearby" parts, modeling
// locality). Its three operations are Lookup (fetch 1000 random parts),
// Traversal (7-level closure over connections from a random part), and
// Insert (add 100 parts wired with 3 connections each).
//
// Two arms reproduce the paper's comparison:
//   - SQL arm: every navigation step is a SQL query against the engine
//     (index probe per step) — the "regular SQL DBMS interface".
//   - XNF arm: the parts graph loads once as a composite object into the
//     cache; navigation is pointer dereference.
package oo1

import (
	"fmt"
	"math/rand"

	"sqlxnf/internal/cache"
	"sqlxnf/internal/engine"
	"sqlxnf/internal/types"
)

// Config sizes the OO1 database.
type Config struct {
	Parts int
	Seed  int64
}

// DefaultConfig uses the small OO1 database scaled to laptop runs.
func DefaultConfig() Config { return Config{Parts: 5000, Seed: 42} }

// Load creates and populates PART and CONN.
func Load(s *engine.Session, cfg Config) error {
	ddl := `
	CREATE TABLE PART (id INT NOT NULL PRIMARY KEY, ptype VARCHAR, x INT, y INT, build INT);
	CREATE TABLE CONN (cfrom INT, cto INT, ctype VARCHAR, clength INT);
	CREATE INDEX conn_from ON CONN (cfrom);
	CREATE INDEX conn_to ON CONN (cto);
	`
	if _, err := s.Exec(ddl); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for id := 1; id <= cfg.Parts; id++ {
		row := types.Row{
			types.NewInt(int64(id)),
			types.NewString(fmt.Sprintf("type-%d", rng.Intn(10))),
			types.NewInt(int64(rng.Intn(100000))),
			types.NewInt(int64(rng.Intn(100000))),
			types.NewInt(int64(rng.Intn(10))),
		}
		if _, err := s.InsertRow("PART", row); err != nil {
			return err
		}
	}
	for id := 1; id <= cfg.Parts; id++ {
		for c := 0; c < 3; c++ {
			to := connectTarget(rng, id, cfg.Parts)
			row := types.Row{
				types.NewInt(int64(id)),
				types.NewInt(int64(to)),
				types.NewString(fmt.Sprintf("ctype-%d", rng.Intn(10))),
				types.NewInt(int64(rng.Intn(1000))),
			}
			if _, err := s.InsertRow("CONN", row); err != nil {
				return err
			}
		}
	}
	return nil
}

// connectTarget picks a connection target with OO1's locality rule: 90% of
// connections go to one of the "closest" parts (here: within ±50 ids).
func connectTarget(rng *rand.Rand, from, parts int) int {
	if rng.Float64() < 0.9 {
		lo := from - 50
		if lo < 1 {
			lo = 1
		}
		hi := from + 50
		if hi > parts {
			hi = parts
		}
		return lo + rng.Intn(hi-lo+1)
	}
	return 1 + rng.Intn(parts)
}

// COQuery is the XNF constructor exposing the parts graph as a composite
// object. Xroot anchors reachability (every part is a root tuple); Xpart
// carries the connection structure as a cyclic relationship with
// attributes, per the paper's recursive-CO machinery.
const COQuery = `OUT OF
	Xroot AS PART,
	Xpart AS PART,
	anchor AS (RELATE Xroot, Xpart WHERE Xroot.id = Xpart.id),
	connects AS (RELATE Xpart AS src, Xpart AS dst
		WITH ATTRIBUTES c.ctype, c.clength
		USING CONN c
		WHERE src.id = c.cfrom AND dst.id = c.cto)
TAKE *`

// LoadCache evaluates the CO and loads it into the navigation cache with a
// key index on part id.
func LoadCache(s *engine.Session) (*cache.Cache, error) {
	r, err := s.Exec(COQuery)
	if err != nil {
		return nil, err
	}
	c, err := cache.Load(s, r.CO)
	if err != nil {
		return nil, err
	}
	if err := c.Node("Xpart").BuildKeyIndex("id"); err != nil {
		return nil, err
	}
	return c, nil
}

// Result carries operation counts so callers can verify both arms do the
// same work.
type Result struct {
	Visited int
	Sum     int64
}

// TraverseCache performs the OO1 traversal (depth levels, following
// outgoing connections, counting repeated visits as OO1 specifies) over
// the pointer cache.
func TraverseCache(c *cache.Cache, startID int, depth int) (Result, error) {
	parts := c.Node("Xpart")
	start, err := parts.Lookup("id", types.NewInt(int64(startID)))
	if err != nil {
		return Result{}, err
	}
	if len(start) == 0 {
		return Result{}, fmt.Errorf("oo1: part %d not found", startID)
	}
	var res Result
	var walk func(t *cache.Tuple, d int) error
	walk = func(t *cache.Tuple, d int) error {
		res.Visited++
		res.Sum += t.MustValue("x").Int()
		if d == 0 {
			return nil
		}
		next, err := c.Related(t, "connects")
		if err != nil {
			return err
		}
		for _, nt := range next {
			if err := walk(nt, d-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(start[0], depth); err != nil {
		return Result{}, err
	}
	return res, nil
}

// TraverseSQL performs the same traversal issuing one SQL query per
// navigation step — the regular-SQL arm of the comparison.
func TraverseSQL(s *engine.Session, startID int, depth int) (Result, error) {
	var res Result
	var walk func(id int64, d int) error
	walk = func(id int64, d int) error {
		r, err := s.Exec(fmt.Sprintf("SELECT x FROM PART WHERE id = %d", id))
		if err != nil {
			return err
		}
		if len(r.Rows) == 0 {
			return fmt.Errorf("oo1: part %d not found", id)
		}
		res.Visited++
		res.Sum += r.Rows[0][0].Int()
		if d == 0 {
			return nil
		}
		conns, err := s.Exec(fmt.Sprintf("SELECT cto FROM CONN WHERE cfrom = %d", id))
		if err != nil {
			return err
		}
		for _, row := range conns.Rows {
			if err := walk(row[0].Int(), d-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(int64(startID), depth); err != nil {
		return Result{}, err
	}
	return res, nil
}

// LookupCache fetches n random parts through the cache key index.
func LookupCache(c *cache.Cache, rng *rand.Rand, parts, n int) (int64, error) {
	node := c.Node("Xpart")
	var sum int64
	for i := 0; i < n; i++ {
		id := 1 + rng.Intn(parts)
		ts, err := node.Lookup("id", types.NewInt(int64(id)))
		if err != nil {
			return 0, err
		}
		if len(ts) > 0 {
			sum += ts[0].MustValue("x").Int()
		}
	}
	return sum, nil
}

// LookupSQL fetches n random parts with point queries.
func LookupSQL(s *engine.Session, rng *rand.Rand, parts, n int) (int64, error) {
	var sum int64
	for i := 0; i < n; i++ {
		id := 1 + rng.Intn(parts)
		r, err := s.Exec(fmt.Sprintf("SELECT x FROM PART WHERE id = %d", id))
		if err != nil {
			return 0, err
		}
		if len(r.Rows) > 0 {
			sum += r.Rows[0][0].Int()
		}
	}
	return sum, nil
}

// InsertSQL performs the OO1 insert operation: n new parts, each wired with
// three connections, through SQL.
func InsertSQL(s *engine.Session, rng *rand.Rand, nextID, n, parts int) error {
	for i := 0; i < n; i++ {
		id := nextID + i
		if _, err := s.Exec(fmt.Sprintf(
			"INSERT INTO PART VALUES (%d, 'type-new', %d, %d, 0)", id, rng.Intn(100000), rng.Intn(100000))); err != nil {
			return err
		}
		for c := 0; c < 3; c++ {
			if _, err := s.Exec(fmt.Sprintf(
				"INSERT INTO CONN VALUES (%d, %d, 'ctype-new', %d)", id, 1+rng.Intn(parts), rng.Intn(1000))); err != nil {
				return err
			}
		}
	}
	return nil
}
