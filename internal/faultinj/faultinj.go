// Package faultinj is the engine's opt-in fault-injection harness. An
// Injector is armed with faults bound to named probe points; engine and
// storage code call Hit at those points and receive the injected error (or
// panic) when a fault's trigger condition is met. A nil *Injector is inert,
// so production paths carry probes at the cost of one nil check.
//
// Probe points (see EXECUTOR.md "Cancellation, timeouts & fault injection"):
//
//	disk.read           storage.Disk.Read, before the copy
//	disk.write          storage.Disk.Write, before the copy
//	bufferpool.fetch    storage.BufferPool.Fetch, before frame lookup
//	wal.append          engine DML primitives, before the heap mutation
//	comat.materialize   engine CO materialization, before the evaluator runs
//	wal.fsync           wal.FileLog, before each fsync (durable engines only)
//	wal.open            wal.Open, before scanning segments (durable engines only)
//	wal.truncate        wal.FileLog.TruncateBefore, before segments drop (durable engines only)
//	net.accept          wire.Server accept loop, after each successful Accept
//	net.read            wire.Server request loop, before each frame read
package faultinj

import (
	"errors"
	"fmt"
	"sync"
)

// Point names a probe point.
type Point string

// The engine's probe points.
const (
	DiskRead    Point = "disk.read"
	DiskWrite   Point = "disk.write"
	BufferFetch Point = "bufferpool.fetch"
	WALAppend   Point = "wal.append"
	ComatMat    Point = "comat.materialize"
	WALFsync    Point = "wal.fsync"
	WALOpen     Point = "wal.open"
	WALTruncate Point = "wal.truncate"
	NetAccept   Point = "net.accept"
	NetRead     Point = "net.read"
)

// Points lists every probe point an in-memory engine wires (chaos suites
// iterate it to prove coverage). WALFsync and WALOpen are excluded: they
// fire only on durable engines, which the crash harness covers separately.
func Points() []Point {
	return []Point{DiskRead, DiskWrite, BufferFetch, WALAppend, ComatMat}
}

// DurablePoints lists the probe points only durable (file-backed WAL)
// engines reach.
func DurablePoints() []Point {
	return []Point{WALFsync, WALOpen, WALTruncate}
}

// NetPoints lists the probe points of the network service layer
// (internal/wire): connection acceptance and per-request frame reads.
func NetPoints() []Point {
	return []Point{NetAccept, NetRead}
}

// ErrInjected is the default error injected when a Fault carries none.
var ErrInjected = errors.New("faultinj: injected fault")

// Fault describes one armed failure at a probe point.
type Fault struct {
	// Point is the probe this fault fires at.
	Point Point
	// After skips that many hits of the point before firing (0 = first hit).
	After int
	// Err is the error to inject; nil uses ErrInjected.
	Err error
	// Panic makes the probe panic instead of returning an error (exercises
	// the engine's statement-boundary containment).
	Panic bool
	// Once disarms the fault after its first firing. Chaos suites use it so
	// rollback's own storage traffic does not re-fault.
	Once bool
}

type armed struct {
	f    Fault
	hits int // probe hits seen by this fault while armed
	dead bool
}

// Injector holds armed faults and fire counters. The zero value is ready to
// use; a nil *Injector is inert.
type Injector struct {
	mu     sync.Mutex
	armed  []*armed
	hits   map[Point]int64
	fired  int64
	byPt   map[Point]int64
	panics int64
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{hits: map[Point]int64{}, byPt: map[Point]int64{}}
}

// Arm adds a fault. Multiple faults may be armed, including on one point;
// the first whose trigger condition is met fires.
func (in *Injector) Arm(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = append(in.armed, &armed{f: f})
}

// DisarmAll removes every armed fault (fire counters persist).
func (in *Injector) DisarmAll() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = nil
}

// Hit is the probe call: it records the hit and, when an armed fault's
// condition is met, fires it — returning its error or panicking. Nil
// receivers (injection disabled) return nil immediately.
func (in *Injector) Hit(p Point) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.hits[p]++
	var fire *Fault
	for _, a := range in.armed {
		if a.dead || a.f.Point != p {
			continue
		}
		a.hits++
		if a.hits <= a.f.After {
			continue
		}
		if a.f.Once {
			a.dead = true
		}
		fire = &a.f
		break
	}
	if fire == nil {
		in.mu.Unlock()
		return nil
	}
	in.fired++
	in.byPt[p]++
	if fire.Panic {
		in.panics++
		in.mu.Unlock()
		panic(fmt.Sprintf("faultinj: injected panic at %s", p))
	}
	err := fire.Err
	in.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("%w at %s", ErrInjected, p)
	}
	return err
}

// Fired returns how many faults have fired in total.
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// FiredAt returns how many faults have fired at one point.
func (in *Injector) FiredAt(p Point) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.byPt[p]
}

// Hits returns how many times a probe point has been reached (fired or not).
func (in *Injector) Hits(p Point) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[p]
}
