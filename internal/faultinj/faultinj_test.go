package faultinj

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit(DiskRead); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Fired() != 0 || in.FiredAt(DiskRead) != 0 || in.Hits(DiskRead) != 0 {
		t.Fatal("nil injector reports nonzero counters")
	}
}

func TestUnarmedInjectorCountsHits(t *testing.T) {
	in := New()
	for i := 0; i < 3; i++ {
		if err := in.Hit(BufferFetch); err != nil {
			t.Fatalf("unarmed probe fired: %v", err)
		}
	}
	if in.Hits(BufferFetch) != 3 {
		t.Fatalf("Hits = %d, want 3", in.Hits(BufferFetch))
	}
	if in.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", in.Fired())
	}
}

func TestAfterSkipsHits(t *testing.T) {
	in := New()
	in.Arm(Fault{Point: DiskWrite, After: 2})
	for i := 0; i < 2; i++ {
		if err := in.Hit(DiskWrite); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	err := in.Hit(DiskWrite)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("third hit returned %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), string(DiskWrite)) {
		t.Fatalf("injected error %q does not name its probe point", err)
	}
	if in.Fired() != 1 || in.FiredAt(DiskWrite) != 1 {
		t.Fatal("fire counters wrong after one firing")
	}
}

func TestOnceDisarmsAfterFiring(t *testing.T) {
	in := New()
	in.Arm(Fault{Point: WALAppend, Once: true})
	if err := in.Hit(WALAppend); err == nil {
		t.Fatal("once-fault did not fire")
	}
	// Rollback traffic hits the same probe; a Once fault must stay dead.
	for i := 0; i < 5; i++ {
		if err := in.Hit(WALAppend); err != nil {
			t.Fatalf("once-fault re-fired on hit %d: %v", i, err)
		}
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", in.Fired())
	}
}

func TestCustomErrorAndDisarmAll(t *testing.T) {
	in := New()
	sentinel := fmt.Errorf("sector vanished")
	in.Arm(Fault{Point: DiskRead, Err: sentinel})
	if err := in.Hit(DiskRead); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want custom sentinel", err)
	}
	in.DisarmAll()
	if err := in.Hit(DiskRead); err != nil {
		t.Fatalf("probe fired after DisarmAll: %v", err)
	}
	if in.Fired() != 1 {
		t.Fatal("DisarmAll reset fire counters; they must persist")
	}
}

func TestPanicFault(t *testing.T) {
	in := New()
	in.Arm(Fault{Point: ComatMat, Panic: true, Once: true})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic fault did not panic")
		}
		if !strings.Contains(fmt.Sprint(v), string(ComatMat)) {
			t.Fatalf("panic value %v does not name the probe point", v)
		}
	}()
	_ = in.Hit(ComatMat)
}

func TestPointsCoversAllConstants(t *testing.T) {
	want := map[Point]bool{
		DiskRead: true, DiskWrite: true, BufferFetch: true,
		WALAppend: true, ComatMat: true,
	}
	pts := Points()
	if len(pts) != len(want) {
		t.Fatalf("Points() lists %d points, want %d", len(pts), len(want))
	}
	for _, p := range pts {
		if !want[p] {
			t.Fatalf("Points() lists unknown point %q", p)
		}
	}
}
