// Package workload generates the synthetic databases the experiments run
// on: the paper's company database in both representations of Fig. 2
// (implicit foreign keys and explicit link tables), optionally laid out
// with composite-object clustering, and a design database modeling the
// introduction's engineering working-set scenario (gigabyte-class design
// repositories from which applications extract 1-in-10⁴ working sets).
package workload

import (
	"fmt"
	"math/rand"

	"sqlxnf/internal/engine"
	"sqlxnf/internal/storage"
	"sqlxnf/internal/types"
)

// CompanyConfig sizes the company database.
type CompanyConfig struct {
	Departments  int
	EmpsPerDept  int
	ProjsPerDept int
	SkillsPerEmp int
	// LinkTable switches to the CDB2 representation: DEPTEMP holds the
	// EMPLOYMENT relationship instead of EMP.edno.
	LinkTable bool
	// Clustered co-locates each department's employees and projects with
	// the department tuple (cluster family + placement hints).
	Clustered bool
	// Scatter inserts employees/projects/skills in shuffled global order,
	// modeling an aged database where related tuples arrived at different
	// times. Composite-object clustering still co-locates them (placement
	// follows the parent, not insertion time); a per-table layout scatters.
	Scatter bool
	// Seed fixes the generator.
	Seed int64
}

// DefaultCompany returns a mid-size configuration.
func DefaultCompany() CompanyConfig {
	return CompanyConfig{Departments: 50, EmpsPerDept: 20, ProjsPerDept: 5, SkillsPerEmp: 2, Seed: 1}
}

// LoadCompany creates and populates the company schema on the session's
// engine. It returns the number of tuples loaded.
func LoadCompany(s *engine.Session, cfg CompanyConfig) (int, error) {
	family := ""
	if cfg.Clustered {
		family = "CLUSTER FAMILY orgunit"
	}
	ddl := fmt.Sprintf(`
	CREATE TABLE DEPT (dno INT NOT NULL PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget FLOAT, dmgrno INT) %s;
	CREATE TABLE EMP (eno INT NOT NULL PRIMARY KEY, ename VARCHAR, sal FLOAT, descr VARCHAR, edno INT) %s;
	CREATE TABLE PROJ (pno INT NOT NULL PRIMARY KEY, pname VARCHAR, budget FLOAT, pdno INT, pmgrno INT) %s;
	CREATE TABLE SKILLS (sno INT NOT NULL PRIMARY KEY, sname VARCHAR, esno INT);
	CREATE INDEX emp_edno ON EMP (edno);
	CREATE INDEX proj_pdno ON PROJ (pdno);
	`, family, family, family)
	if cfg.LinkTable {
		ddl += "CREATE TABLE DEPTEMP (dedno INT, deeno INT);\nCREATE INDEX de_dno ON DEPTEMP (dedno);\n"
	}
	if _, err := s.Exec(ddl); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	locs := []string{"NY", "SF", "LA", "CHI", "BOS"}
	n := 0
	eno := 1000
	pno := 5000
	sno := 90000

	// Departments load first; dependent tuples queue up and then insert,
	// either in generation order or shuffled (Scatter).
	type pending struct {
		table string
		dept  int // for clustering hints
		row   types.Row
	}
	deptRIDs := map[int]storage.RID{}
	var queue []pending
	for d := 1; d <= cfg.Departments; d++ {
		deptRow := types.Row{
			types.NewInt(int64(d)),
			types.NewString(fmt.Sprintf("dept-%d", d)),
			types.NewString(locs[rng.Intn(len(locs))]),
			types.NewFloat(float64(100000 + rng.Intn(900000))),
			types.NewInt(int64(eno + 1)), // manager is the first employee
		}
		var rid storage.RID
		var err error
		if cfg.Clustered {
			// Each organizational unit anchors its own page neighborhood.
			rid, err = s.InsertRowOnFreshPage("DEPT", deptRow)
		} else {
			rid, err = s.InsertRow("DEPT", deptRow)
		}
		if err != nil {
			return n, err
		}
		deptRIDs[d] = rid
		n++
		for i := 0; i < cfg.EmpsPerDept; i++ {
			eno++
			edno := types.Value(types.NewInt(int64(d)))
			if cfg.LinkTable {
				edno = types.Null()
			}
			queue = append(queue, pending{"EMP", d, types.Row{
				types.NewInt(int64(eno)),
				types.NewString(fmt.Sprintf("emp-%d", eno)),
				types.NewFloat(float64(1000 + rng.Intn(4000))),
				types.NewString(pick(rng, "staff", "manager", "contractor")),
				edno,
			}})
			if cfg.LinkTable {
				queue = append(queue, pending{"DEPTEMP", d, types.Row{
					types.NewInt(int64(d)), types.NewInt(int64(eno)),
				}})
			}
			for k := 0; k < cfg.SkillsPerEmp; k++ {
				sno++
				queue = append(queue, pending{"SKILLS", d, types.Row{
					types.NewInt(int64(sno)),
					types.NewString(fmt.Sprintf("skill-%d", sno%37)),
					types.NewInt(int64(eno)),
				}})
			}
		}
		for i := 0; i < cfg.ProjsPerDept; i++ {
			pno++
			queue = append(queue, pending{"PROJ", d, types.Row{
				types.NewInt(int64(pno)),
				types.NewString(fmt.Sprintf("proj-%d", pno)),
				types.NewFloat(float64(10000 + rng.Intn(90000))),
				types.NewInt(int64(d)),
				types.NewInt(int64(eno - rng.Intn(cfg.EmpsPerDept))),
			}})
		}
	}
	if cfg.Scatter {
		rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })
	}
	for _, p := range queue {
		var err error
		if cfg.Clustered && p.table != "DEPTEMP" && p.table != "SKILLS" {
			_, err = s.InsertRowNear(p.table, deptRIDs[p.dept], p.row)
		} else {
			_, err = s.InsertRow(p.table, p.row)
		}
		if err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func pick(rng *rand.Rand, opts ...string) string { return opts[rng.Intn(len(opts))] }

// CompanyCOQuery returns the XNF constructor for the company organizational
// unit (Fig. 1) restricted to one department number, in the representation
// matching cfg.
func CompanyCOQuery(cfg CompanyConfig, dno int) string {
	employment := "employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)"
	if cfg.LinkTable {
		employment = `employment AS (RELATE Xdept, Xemp USING DEPTEMP de
			WHERE Xdept.dno = de.dedno AND Xemp.eno = de.deeno)`
	}
	return fmt.Sprintf(`OUT OF
		Xdept AS (SELECT * FROM DEPT WHERE dno = %d),
		Xemp AS EMP,
		Xproj AS PROJ,
		Xskills AS SKILLS,
		%s,
		ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno),
		empproperty AS (RELATE Xemp, Xskills WHERE Xemp.eno = Xskills.esno)
	TAKE *`, dno, employment)
}

// DesignConfig sizes the design database of the introduction's scenario.
type DesignConfig struct {
	Designs        int // number of (model, version) designs
	CompsPerDesign int
	SubsPerComp    int
	Seed           int64
}

// DefaultDesign returns a configuration where extracting one design selects
// roughly 1 tuple in 10^4 when Designs is 10000.
func DefaultDesign() DesignConfig {
	return DesignConfig{Designs: 2000, CompsPerDesign: 8, SubsPerComp: 4, Seed: 7}
}

// LoadDesign creates and populates the design schema: DESIGNS with
// versioned models, COMPONENTS per design, SUBCOMP per component.
func LoadDesign(s *engine.Session, cfg DesignConfig) (int, error) {
	ddl := `
	CREATE TABLE DESIGNS (did INT NOT NULL PRIMARY KEY, model VARCHAR, version INT, author VARCHAR);
	CREATE TABLE COMPONENTS (cid INT NOT NULL PRIMARY KEY, cdid INT, kind VARCHAR, weight FLOAT);
	CREATE TABLE SUBCOMP (sid INT NOT NULL PRIMARY KEY, scid INT, payload VARCHAR);
	CREATE INDEX comp_did ON COMPONENTS (cdid);
	CREATE INDEX sub_cid ON SUBCOMP (scid);
	CREATE INDEX design_model ON DESIGNS (model);
	`
	if _, err := s.Exec(ddl); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := 0
	cid, sid := 0, 0
	for d := 0; d < cfg.Designs; d++ {
		if _, err := s.InsertRow("DESIGNS", types.Row{
			types.NewInt(int64(d)),
			types.NewString(fmt.Sprintf("model-%d", d/4)), // 4 versions per model
			types.NewInt(int64(d % 4)),
			types.NewString(fmt.Sprintf("author-%d", rng.Intn(40))),
		}); err != nil {
			return n, err
		}
		n++
		for c := 0; c < cfg.CompsPerDesign; c++ {
			cid++
			if _, err := s.InsertRow("COMPONENTS", types.Row{
				types.NewInt(int64(cid)),
				types.NewInt(int64(d)),
				types.NewString(pick(rng, "wing", "spar", "rib", "panel")),
				types.NewFloat(rng.Float64() * 100),
			}); err != nil {
				return n, err
			}
			n++
			for x := 0; x < cfg.SubsPerComp; x++ {
				sid++
				if _, err := s.InsertRow("SUBCOMP", types.Row{
					types.NewInt(int64(sid)),
					types.NewInt(int64(cid)),
					types.NewString(fmt.Sprintf("payload-%d", sid%101)),
				}); err != nil {
					return n, err
				}
				n++
			}
		}
	}
	return n, nil
}

// WorkingSetQuery extracts the working set of one (model, version): the
// design with its components and subcomponents — the paper's working-set
// extraction (intro: "a particular version of a document or a wing of an
// aircraft for a particular model and version").
func WorkingSetQuery(model string, version int) string {
	return fmt.Sprintf(`OUT OF
		Xdesign AS (SELECT * FROM DESIGNS WHERE model = '%s' AND version = %d),
		Xcomp AS COMPONENTS,
		Xsub AS SUBCOMP,
		hascomp AS (RELATE Xdesign, Xcomp WHERE Xdesign.did = Xcomp.cdid),
		hassub AS (RELATE Xcomp, Xsub WHERE Xcomp.cid = Xsub.scid)
	TAKE *`, model, version)
}
