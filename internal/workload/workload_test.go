package workload

import (
	"testing"

	"sqlxnf/internal/engine"
)

func TestLoadCompanyFKRepresentation(t *testing.T) {
	s := engine.NewDefault().Session()
	cfg := CompanyConfig{Departments: 5, EmpsPerDept: 4, ProjsPerDept: 2, SkillsPerEmp: 1, Seed: 1}
	n, err := LoadCompany(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 5 + 5*4 + 5*2 + 5*4*1
	if n != want {
		t.Errorf("loaded %d tuples, want %d", n, want)
	}
	r, _ := s.Exec("SELECT COUNT(*) FROM EMP")
	if r.Rows[0][0].Int() != 20 {
		t.Errorf("emp count = %v", r.Rows[0][0])
	}
	// The Fig. 1 CO extracts one organizational unit.
	res, err := s.Exec(CompanyCOQuery(cfg, 3))
	if err != nil {
		t.Fatal(err)
	}
	co := res.CO
	if len(co.Node("Xdept").Rows) != 1 {
		t.Fatalf("Xdept = %d", len(co.Node("Xdept").Rows))
	}
	if len(co.Node("Xemp").Rows) != 4 || len(co.Node("Xproj").Rows) != 2 {
		t.Errorf("working set: emps=%d projs=%d", len(co.Node("Xemp").Rows), len(co.Node("Xproj").Rows))
	}
	if len(co.Node("Xskills").Rows) != 4 {
		t.Errorf("skills = %d", len(co.Node("Xskills").Rows))
	}
}

func TestLoadCompanyLinkTableRepresentation(t *testing.T) {
	s := engine.NewDefault().Session()
	cfg := CompanyConfig{Departments: 3, EmpsPerDept: 4, ProjsPerDept: 1, SkillsPerEmp: 0, Seed: 2, LinkTable: true}
	if _, err := LoadCompany(s, cfg); err != nil {
		t.Fatal(err)
	}
	r, _ := s.Exec("SELECT COUNT(*) FROM DEPTEMP")
	if r.Rows[0][0].Int() != 12 {
		t.Errorf("link rows = %v", r.Rows[0][0])
	}
	// Fig. 2: the same CO abstraction from the explicit representation.
	res, err := s.Exec(CompanyCOQuery(cfg, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.CO.Node("Xemp").Rows); got != 4 {
		t.Errorf("emps via link table = %d", got)
	}
	if res.CO.Edge("employment").LinkTable != "DEPTEMP" {
		t.Error("link provenance missing")
	}
}

func TestRepresentationIndependenceSameCO(t *testing.T) {
	// Fig. 2's point: the two representations yield the same abstraction.
	load := func(link bool) map[string]int {
		s := engine.NewDefault().Session()
		cfg := CompanyConfig{Departments: 4, EmpsPerDept: 3, ProjsPerDept: 2, SkillsPerEmp: 1, Seed: 9, LinkTable: link}
		if _, err := LoadCompany(s, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := s.Exec(CompanyCOQuery(cfg, 1))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		for _, n := range res.CO.Nodes {
			out[n.Name] = len(n.Rows)
		}
		for _, e := range res.CO.Edges {
			out[e.Name] = len(e.Conns)
		}
		return out
	}
	a, b := load(false), load(true)
	for k, v := range a {
		if b[k] != v {
			t.Errorf("representation mismatch at %s: %d vs %d", k, v, b[k])
		}
	}
}

func TestClusteredLayoutCoLocates(t *testing.T) {
	mk := func(clustered bool) (int64, int64) {
		e := engine.New(engine.Options{BufferPoolPages: 8}) // tiny pool → cold reads
		s := e.Session()
		cfg := CompanyConfig{Departments: 40, EmpsPerDept: 10, ProjsPerDept: 3, SkillsPerEmp: 0, Seed: 3, Clustered: clustered}
		if _, err := LoadCompany(s, cfg); err != nil {
			t.Fatal(err)
		}
		if err := e.BufferPool().DropAll(); err != nil {
			t.Fatal(err)
		}
		e.Disk().ResetStats()
		// Extract one organizational unit.
		if _, err := s.Exec(CompanyCOQuery(cfg, 17)); err != nil {
			t.Fatal(err)
		}
		st := e.Disk().Stats()
		return st.Reads, st.Writes
	}
	clusteredReads, _ := mk(true)
	unclusteredReads, _ := mk(false)
	// Both extract the same CO; clustering should not read more.
	if clusteredReads > unclusteredReads {
		t.Errorf("clustered extraction reads %d pages, unclustered %d", clusteredReads, unclusteredReads)
	}
}

func TestLoadDesignAndWorkingSet(t *testing.T) {
	s := engine.NewDefault().Session()
	cfg := DesignConfig{Designs: 40, CompsPerDesign: 3, SubsPerComp: 2, Seed: 4}
	n, err := LoadDesign(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 40 + 40*3 + 40*3*2
	if n != want {
		t.Errorf("loaded %d, want %d", n, want)
	}
	res, err := s.Exec(WorkingSetQuery("model-3", 1))
	if err != nil {
		t.Fatal(err)
	}
	co := res.CO
	if len(co.Node("Xdesign").Rows) != 1 {
		t.Fatalf("designs = %d", len(co.Node("Xdesign").Rows))
	}
	if len(co.Node("Xcomp").Rows) != 3 || len(co.Node("Xsub").Rows) != 6 {
		t.Errorf("working set: comps=%d subs=%d", len(co.Node("Xcomp").Rows), len(co.Node("Xsub").Rows))
	}
	// Selectivity: one design out of 40 → the extraction's answer is a
	// small fraction of the database, the paper's working-set pattern.
	if co.Size() >= n/4 {
		t.Errorf("working set of %d tuples is not selective against %d", co.Size(), n)
	}
}
