package storage

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"sqlxnf/internal/types"
)

// Morsel-driven scan dispatch (Leis et al., SIGMOD 2014): a heap scan splits
// into page-range morsels that worker goroutines claim through an atomic
// cursor. Every worker runs the same decode loop a serial PageScanner would,
// just over the pages it claimed, so the workers collectively visit each page
// exactly once with no per-row synchronization — the only shared write is the
// claim cursor.

// DefaultMorselPages is the number of heap pages one claim hands a worker.
// At 4 KiB pages and typical row widths a morsel is a few thousand rows:
// big enough that the atomic claim never shows up in profiles, small enough
// that workers finishing early keep stealing work until the chain is dry.
const DefaultMorselPages = 16

// MorselDispatcher hands out page-range morsels of one heap chain. It
// snapshots the chain's page ids at creation — pages appended by concurrent
// writers afterwards hold only rows invisible to the scanning snapshot, so
// missing them is exactly right — and serves Claim from an atomic cursor,
// safe for any number of concurrent workers.
type MorselDispatcher struct {
	pages  []PageID
	per    int64
	cursor atomic.Int64
}

// MorselDispatcher walks the heap chain and returns a dispatcher serving
// morsels of pagesPerMorsel pages (<= 0 means DefaultMorselPages).
func (h *Heap) MorselDispatcher(pagesPerMorsel int) (*MorselDispatcher, error) {
	if pagesPerMorsel <= 0 {
		pagesPerMorsel = DefaultMorselPages
	}
	d := &MorselDispatcher{per: int64(pagesPerMorsel)}
	h.mu.RLock()
	defer h.mu.RUnlock()
	id := h.first
	for id != InvalidPage {
		p, err := h.bp.Fetch(id)
		if err != nil {
			return nil, err
		}
		next := p.Next()
		h.bp.Unpin(id, false)
		d.pages = append(d.pages, id)
		id = next
	}
	return d, nil
}

// Pages reports the total page count the dispatcher will hand out.
func (d *MorselDispatcher) Pages() int { return len(d.pages) }

// Claim returns the next unclaimed run of pages, or nil when the chain is
// exhausted. Lock-free: one atomic add per morsel.
func (d *MorselDispatcher) Claim() []PageID {
	end := d.cursor.Add(d.per)
	start := end - d.per
	if start >= int64(len(d.pages)) {
		return nil
	}
	if end > int64(len(d.pages)) {
		end = int64(len(d.pages))
	}
	return d.pages[start:end]
}

// MorselReader decodes the live rows one table owns on claimed pages. Each
// worker holds its own reader, so decoded values come from a private
// types.RowDecoder arena — workers never share allocation state.
type MorselReader struct {
	h   *Heap
	tag uint32
	dec types.RowDecoder
	// Vis is the snapshot filter; nil scans latest-committed rows.
	Vis VisFunc
}

// MorselReader returns a reader over this heap for rows owned by tag.
func (h *Heap) MorselReader(tag uint32) *MorselReader {
	return &MorselReader{h: h, tag: tag}
}

// ReadPage appends the live rows of page id owned by the reader's table to
// rows. Cells owned by other tables of a cluster family are skipped before
// row decode. (No RID tracking: parallel scans have no provenance consumer;
// the RID-keeping paths run through PageScanner.)
func (r *MorselReader) ReadPage(id PageID, rows []types.Row) ([]types.Row, error) {
	h := r.h
	h.mu.RLock()
	defer h.mu.RUnlock()
	p, err := h.bp.Fetch(id)
	if err != nil {
		return rows, err
	}
	err = p.LiveCells(func(slot int, cell []byte) error {
		tag, n := binary.Uvarint(cell)
		if n <= 0 {
			return fmt.Errorf("storage: corrupt cell tag")
		}
		if uint32(tag) != r.tag {
			return nil
		}
		if !h.visibleLocked(RID{Page: id, Slot: uint16(slot)}, r.Vis) {
			return nil
		}
		row, _, derr := r.dec.Decode(cell[n:])
		if derr != nil {
			return derr
		}
		rows = append(rows, row)
		return nil
	})
	h.bp.Unpin(id, false)
	return rows, err
}
