package storage

import (
	"container/list"
	"fmt"
	"sync"

	"sqlxnf/internal/faultinj"
)

// PoolStats counts buffer-pool activity.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

type frame struct {
	id    PageID
	data  []byte
	pins  int
	dirty bool
	elem  *list.Element // position in the LRU list; nil while pinned
}

// BufferPool caches disk pages with pin counting and LRU replacement.
// A pinned page is never evicted; Unpin with dirty=true schedules a
// write-back on eviction or flush.
type BufferPool struct {
	mu     sync.Mutex
	disk   *Disk
	cap    int
	frames map[PageID]*frame
	lru    *list.List // of PageID, front = most recent
	stats  PoolStats
	// inj is the optional fault injector (nil = probes inert). Set once at
	// engine construction, before any concurrent use.
	inj *faultinj.Injector
}

// SetFaultInjector arms the pool's probe points. Call before first use.
func (bp *BufferPool) SetFaultInjector(in *faultinj.Injector) { bp.inj = in }

// NewBufferPool creates a pool of the given capacity (in pages) over disk.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:   disk,
		cap:    capacity,
		frames: make(map[PageID]*frame, capacity),
		lru:    list.New(),
	}
}

// Disk exposes the underlying device (for stats in benches).
func (bp *BufferPool) Disk() *Disk { return bp.disk }

// Capacity returns the pool size in pages.
func (bp *BufferPool) Capacity() int { return bp.cap }

// Fetch pins the page and returns it, reading from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	if err := bp.inj.Hit(faultinj.BufferFetch); err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.pinLocked(f)
		return &Page{ID: id, Data: f.data}, nil
	}
	bp.stats.Misses++
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	// The freshly allocated frame holds zeroes until the read lands. If the
	// read fails — or panics, which statement containment will recover above
	// us — the frame must not stay cached: a later Fetch would pin it and see
	// an empty page where real data lives on disk.
	ok := false
	defer func() {
		if !ok {
			delete(bp.frames, id)
		}
	}()
	if err := bp.disk.Read(id, f.data); err != nil {
		return nil, err
	}
	ok = true
	return &Page{ID: id, Data: f.data}, nil
}

// NewPage allocates a fresh disk page, pins it, and formats it as an empty
// slotted page.
func (bp *BufferPool) NewPage() (*Page, error) {
	id := bp.disk.Allocate()
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	p := &Page{ID: id, Data: f.data}
	p.Init()
	f.dirty = true
	return p, nil
}

// allocFrameLocked finds room for a new pinned frame, evicting if needed.
func (bp *BufferPool) allocFrameLocked(id PageID) (*frame, error) {
	for len(bp.frames) >= bp.cap {
		back := bp.lru.Back()
		if back == nil {
			return nil, fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", bp.cap)
		}
		victim := back.Value.(PageID)
		vf := bp.frames[victim]
		// Write back before dismantling the frame: if the write errors or
		// panics, the victim stays fully cached (still in the LRU, still
		// dirty) and the pool remains consistent for the next caller.
		if vf.dirty {
			if err := bp.disk.Write(victim, vf.data); err != nil {
				return nil, err
			}
			vf.dirty = false
		}
		bp.lru.Remove(back)
		vf.elem = nil
		delete(bp.frames, victim)
		bp.stats.Evictions++
	}
	f := &frame{id: id, data: make([]byte, PageSize), pins: 1}
	bp.frames[id] = f
	return f, nil
}

func (bp *BufferPool) pinLocked(f *frame) {
	f.pins++
	if f.elem != nil {
		bp.lru.Remove(f.elem)
		f.elem = nil
	}
}

// Unpin releases one pin; dirty marks the page modified.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[id]
	if !ok || f.pins == 0 {
		panic(fmt.Sprintf("storage: Unpin of unpinned page %d", id))
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 {
		f.elem = bp.lru.PushFront(id)
	}
}

// FlushAll writes every dirty frame back to disk (pages stay cached).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if f.dirty {
			if err := bp.disk.Write(id, f.data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// DropAll flushes and then empties the cache. Benches use it to measure
// cold-buffer I/O.
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.frames {
		if f.pins > 0 {
			return fmt.Errorf("storage: DropAll with page %d still pinned", id)
		}
		if f.dirty {
			if err := bp.disk.Write(id, f.data); err != nil {
				return err
			}
		}
	}
	bp.frames = make(map[PageID]*frame, bp.cap)
	bp.lru.Init()
	return nil
}

// Stats returns a snapshot of hit/miss/eviction counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// PinnedCount reports how many frames are currently pinned (for leak tests).
func (bp *BufferPool) PinnedCount() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}
