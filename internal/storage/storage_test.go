package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"sqlxnf/internal/types"
)

func TestDiskAllocateReadWrite(t *testing.T) {
	d := NewDisk()
	id := d.Allocate()
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Error("read did not return written data")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Allocs != 1 {
		t.Errorf("stats = %+v", st)
	}
	d.ResetStats()
	if st := d.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Errorf("ResetStats left %+v", st)
	}
	// Out-of-range accesses error.
	if err := d.Read(99, got); err == nil {
		t.Error("read of unallocated page should fail")
	}
	if err := d.Write(99, buf); err == nil {
		t.Error("write of unallocated page should fail")
	}
	// Bad buffer size.
	if err := d.Read(id, make([]byte, 10)); err == nil {
		t.Error("short read buffer should fail")
	}
}

func TestPageInsertGetDelete(t *testing.T) {
	p := &Page{ID: 1, Data: make([]byte, PageSize)}
	p.Init()
	if p.NumSlots() != 0 {
		t.Fatal("fresh page has slots")
	}
	s1, ok := p.InsertCell([]byte("hello"))
	if !ok {
		t.Fatal("insert failed")
	}
	s2, ok := p.InsertCell([]byte("world!"))
	if !ok {
		t.Fatal("insert failed")
	}
	if c, err := p.Cell(s1); err != nil || string(c) != "hello" {
		t.Errorf("cell 1 = %q, %v", c, err)
	}
	if c, err := p.Cell(s2); err != nil || string(c) != "world!" {
		t.Errorf("cell 2 = %q, %v", c, err)
	}
	if err := p.DeleteCell(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Cell(s1); err == nil {
		t.Error("dead cell readable")
	}
	if err := p.DeleteCell(s1); err == nil {
		t.Error("double delete should fail")
	}
	// Dead slot is reused.
	s3, ok := p.InsertCell([]byte("re"))
	if !ok || s3 != s1 {
		t.Errorf("dead slot not reused: slot=%d ok=%v", s3, ok)
	}
	// Out of range.
	if _, err := p.Cell(99); err == nil {
		t.Error("out-of-range cell should fail")
	}
}

func TestPageFillCompactionAndUpdate(t *testing.T) {
	p := &Page{ID: 1, Data: make([]byte, PageSize)}
	p.Init()
	payload := make([]byte, 100)
	var slots []int
	for {
		s, ok := p.InsertCell(payload)
		if !ok {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 30 {
		t.Fatalf("only %d 100-byte cells fit in a page", len(slots))
	}
	// Delete every other cell, then insert larger cells that only fit after
	// compaction stitches the holes together.
	for i := 0; i < len(slots); i += 2 {
		if err := p.DeleteCell(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := make([]byte, 150)
	n := 0
	for {
		if _, ok := p.InsertCell(big); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("compaction failed to reclaim space")
	}
	// Update in place (shrink) keeps the slot.
	small := []byte("xy")
	ok, err := p.UpdateCell(slots[1], small)
	if err != nil || !ok {
		t.Fatalf("in-place update: %v %v", ok, err)
	}
	if c, _ := p.Cell(slots[1]); string(c) != "xy" {
		t.Error("update lost data")
	}
	// Growing update may fail when page is packed.
	huge := make([]byte, PageSize)
	ok, err = p.UpdateCell(slots[1], huge)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("oversize update should report !ok")
	}
	if c, _ := p.Cell(slots[1]); string(c) != "xy" {
		t.Error("failed update must leave old value intact")
	}
}

func TestPageRandomizedInvariant(t *testing.T) {
	// Property: a page behaves like a map[slot][]byte under random
	// insert/delete/update, and never loses or corrupts live cells.
	rng := rand.New(rand.NewSource(42))
	p := &Page{ID: 1, Data: make([]byte, PageSize)}
	p.Init()
	model := map[int][]byte{}
	mk := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return b
	}
	for step := 0; step < 5000; step++ {
		switch rng.Intn(3) {
		case 0: // insert
			data := mk(1 + rng.Intn(200))
			if s, ok := p.InsertCell(data); ok {
				model[s] = data
			}
		case 1: // delete
			for s := range model {
				if err := p.DeleteCell(s); err != nil {
					t.Fatalf("step %d: delete: %v", step, err)
				}
				delete(model, s)
				break
			}
		case 2: // update
			for s := range model {
				data := mk(1 + rng.Intn(200))
				ok, err := p.UpdateCell(s, data)
				if err != nil {
					t.Fatalf("step %d: update: %v", step, err)
				}
				if ok {
					model[s] = data
				}
				break
			}
		}
		// Verify all model entries.
		if step%500 == 0 {
			for s, want := range model {
				got, err := p.Cell(s)
				if err != nil {
					t.Fatalf("step %d: cell %d: %v", step, s, err)
				}
				if string(got) != string(want) {
					t.Fatalf("step %d: cell %d corrupted", step, s)
				}
			}
		}
	}
}

func TestBufferPoolHitMissEvict(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 2)
	p1, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p1.Data[100] = 7
	id1 := p1.ID
	bp.Unpin(id1, true)
	p2, _ := bp.NewPage()
	id2 := p2.ID
	bp.Unpin(id2, true)
	// Third page evicts LRU (p1, dirty → written back).
	p3, _ := bp.NewPage()
	id3 := p3.ID
	bp.Unpin(id3, true)
	if st := bp.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// Re-fetch p1: must come from disk with data intact.
	r1, err := bp.Fetch(id1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Data[100] != 7 {
		t.Error("dirty eviction lost data")
	}
	bp.Unpin(id1, false)
	if bp.PinnedCount() != 0 {
		t.Errorf("pinned leak: %d", bp.PinnedCount())
	}
}

func TestBufferPoolAllPinnedExhaustion(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 2)
	p1, _ := bp.NewPage()
	p2, _ := bp.NewPage()
	if _, err := bp.NewPage(); err == nil {
		t.Error("pool with all pages pinned must refuse new frames")
	}
	bp.Unpin(p1.ID, false)
	bp.Unpin(p2.ID, false)
	if _, err := bp.NewPage(); err != nil {
		t.Errorf("after unpin NewPage should work: %v", err)
	}
}

func TestBufferPoolUnpinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unpin of unknown page should panic")
		}
	}()
	bp := NewBufferPool(NewDisk(), 2)
	bp.Unpin(5, false)
}

func TestBufferPoolDropAllColdRead(t *testing.T) {
	d := NewDisk()
	bp := NewBufferPool(d, 10)
	p, _ := bp.NewPage()
	id := p.ID
	p.Data[0] = 9
	bp.Unpin(id, true)
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	q, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if q.Data[0] != 9 {
		t.Error("DropAll lost dirty data")
	}
	bp.Unpin(id, false)
	if d.Stats().Reads != 1 {
		t.Errorf("cold fetch should read disk once, got %d", d.Stats().Reads)
	}
}

func row(vals ...interface{}) types.Row {
	r := make(types.Row, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			r[i] = types.NewInt(int64(x))
		case string:
			r[i] = types.NewString(x)
		case float64:
			r[i] = types.NewFloat(x)
		case nil:
			r[i] = types.Null()
		default:
			panic("bad test value")
		}
	}
	return r
}

func TestHeapInsertGetScan(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 16)
	h, err := CreateHeap(bp)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 500; i++ {
		rid, err := h.Insert(1, row(i, fmt.Sprintf("name-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Point reads.
	for i, rid := range rids {
		r, err := h.Get(1, rid)
		if err != nil {
			t.Fatal(err)
		}
		if r[0].Int() != int64(i) {
			t.Fatalf("rid %v returned %v", rid, r)
		}
	}
	// Scan sees all rows in insertion order within tag.
	n := 0
	err = h.Scan(1, func(rid RID, r types.Row) (bool, error) {
		if r[0].Int() != int64(n) {
			return false, fmt.Errorf("scan out of order at %d: %v", n, r)
		}
		n++
		return false, nil
	})
	if err != nil || n != 500 {
		t.Fatalf("scan: n=%d err=%v", n, err)
	}
	// Early stop.
	n = 0
	if err := h.Scan(1, func(RID, types.Row) (bool, error) { n++; return n == 10, nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("early stop scanned %d", n)
	}
	if bp.PinnedCount() != 0 {
		t.Errorf("pin leak: %d", bp.PinnedCount())
	}
}

func TestHeapTagIsolation(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 16)
	h, _ := CreateHeap(bp)
	ridA, _ := h.Insert(1, row(1, "a"))
	ridB, _ := h.Insert(2, row(2, "b"))
	// Cross-tag access is refused.
	if _, err := h.Get(2, ridA); err == nil {
		t.Error("cross-tag Get should fail")
	}
	if err := h.Delete(1, ridB); err == nil {
		t.Error("cross-tag Delete should fail")
	}
	if _, err := h.Update(2, ridA, row(9, "x")); err == nil {
		t.Error("cross-tag Update should fail")
	}
	// Per-tag scans are disjoint.
	count := map[uint32]int{}
	if err := h.ScanAll(func(_ RID, tag uint32, _ types.Row) (bool, error) {
		count[tag]++
		return false, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count[1] != 1 || count[2] != 1 {
		t.Errorf("ScanAll counts = %v", count)
	}
}

func TestHeapUpdateDeleteAndMove(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 32)
	h, _ := CreateHeap(bp)
	rid, _ := h.Insert(1, row(1, "short"))
	// In-place update.
	nrid, err := h.Update(1, rid, row(1, "tiny"))
	if err != nil || nrid != rid {
		t.Fatalf("in-place update moved: %v %v", nrid, err)
	}
	// Fill the first page so a growing update must move.
	for i := 0; i < 2000; i++ {
		if _, err := h.Insert(1, row(i, "filler-filler-filler")); err != nil {
			t.Fatal(err)
		}
	}
	long := make([]byte, 3000)
	for i := range long {
		long[i] = 'x'
	}
	nrid, err = h.Update(1, rid, row(1, string(long)))
	if err != nil {
		t.Fatal(err)
	}
	if nrid == rid {
		t.Error("big update should have moved the tuple")
	}
	got, err := h.Get(1, nrid)
	if err != nil || got[1].Str() != string(long) {
		t.Fatalf("moved tuple unreadable: %v", err)
	}
	// Delete then Get fails.
	if err := h.Delete(1, nrid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(1, nrid); err == nil {
		t.Error("get after delete should fail")
	}
	if bp.PinnedCount() != 0 {
		t.Errorf("pin leak: %d", bp.PinnedCount())
	}
}

func TestHeapOpenFindsTail(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 64)
	h, _ := CreateHeap(bp)
	for i := 0; i < 3000; i++ {
		if _, err := h.Insert(1, row(i, "some-filler-content")); err != nil {
			t.Fatal(err)
		}
	}
	pc, err := h.PageCount()
	if err != nil {
		t.Fatal(err)
	}
	if pc < 2 {
		t.Fatalf("expected multi-page heap, got %d pages", pc)
	}
	h2, err := OpenHeap(bp, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	// Appending through the reopened heap must not corrupt the chain.
	if _, err := h2.Insert(1, row(-1, "tail")); err != nil {
		t.Fatal(err)
	}
	n := 0
	last := -2
	if err := h2.Scan(1, func(_ RID, r types.Row) (bool, error) {
		n++
		last = int(r[0].Int())
		return false, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3001 || last != -1 {
		t.Errorf("reopened heap scan: n=%d last=%d", n, last)
	}
}

func TestHeapInsertNearClusters(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 64)
	h, _ := CreateHeap(bp)
	parent, _ := h.Insert(1, row(1, "dept"))
	// Children placed near the parent land on the parent's page while it
	// has room.
	same := 0
	for i := 0; i < 20; i++ {
		rid, err := h.InsertNear(2, parent, row(i, "emp"))
		if err != nil {
			t.Fatal(err)
		}
		if rid.Page == parent.Page {
			same++
		}
	}
	if same != 20 {
		t.Errorf("only %d/20 children co-located with parent", same)
	}
	// When the page fills, InsertNear falls back gracefully.
	for i := 0; i < 5000; i++ {
		if _, err := h.InsertNear(2, parent, row(i, "overflow-overflow")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHeapRejectsOversizeRow(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 8)
	h, _ := CreateHeap(bp)
	big := make([]byte, PageSize)
	if _, err := h.Insert(1, row(1, string(big))); err == nil {
		t.Error("row larger than a page must be rejected")
	}
}

func TestHeapInsertOnFreshPage(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 64)
	h, _ := CreateHeap(bp)
	// Fill some of the first page.
	first, _ := h.Insert(1, row(0, "root-zero"))
	r1, err := h.InsertOnFreshPage(1, row(1, "root-one"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Page == first.Page {
		t.Error("fresh-page insert landed on the old page")
	}
	// Children near the fresh root co-locate with it.
	for i := 0; i < 10; i++ {
		rid, err := h.InsertNear(2, r1, row(i, "child"))
		if err != nil {
			t.Fatal(err)
		}
		if rid.Page != r1.Page {
			t.Errorf("child %d landed on page %d, want %d", i, rid.Page, r1.Page)
		}
	}
	// The chain stays scannable end to end.
	n := 0
	if err := h.ScanAll(func(RID, uint32, types.Row) (bool, error) { n++; return false, nil }); err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Errorf("scan found %d rows", n)
	}
	// Appends after a fresh page go to the new tail.
	r2, _ := h.Insert(1, row(99, "tail"))
	if r2.Page != r1.Page {
		t.Errorf("append went to page %d, want tail %d", r2.Page, r1.Page)
	}
	// Oversize rejection.
	if _, err := h.InsertOnFreshPage(1, row(1, string(make([]byte, PageSize)))); err == nil {
		t.Error("oversize row must be rejected")
	}
}

func TestPageScannerStreamsPages(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 256)
	h, err := CreateHeap(bp)
	if err != nil {
		t.Fatal(err)
	}
	// Two interleaved owners across many pages.
	const n = 1200
	want := map[int64]bool{}
	for i := 0; i < n; i++ {
		tag := uint32(1 + i%2)
		row := types.Row{types.NewInt(int64(i)), types.NewString("payload-payload")}
		if _, err := h.Insert(tag, row); err != nil {
			t.Fatal(err)
		}
		if tag == 1 {
			want[int64(i)] = true
		}
	}
	ps := h.PageScanner(1)
	var rows []types.Row
	var rids []RID
	pages := 0
	got := map[int64]bool{}
	for {
		rows, rids = rows[:0], rids[:0]
		var ok bool
		rows, rids, ok, err = ps.NextPage(rows, rids)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		pages++
		if len(rows) != len(rids) {
			t.Fatalf("page %d: %d rows but %d rids", pages, len(rows), len(rids))
		}
		for i, r := range rows {
			id := r[0].Int()
			if !want[id] {
				t.Fatalf("scanner returned foreign or unknown row id %d", id)
			}
			if got[id] {
				t.Fatalf("scanner returned row id %d twice", id)
			}
			got[id] = true
			// RID must round-trip through Get for the same owner.
			back, err := h.Get(1, rids[i])
			if err != nil {
				t.Fatalf("Get(%v): %v", rids[i], err)
			}
			if !back.Equal(r) {
				t.Fatalf("rid %v: Get returned %v, scan returned %v", rids[i], back, r)
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scanner returned %d rows, want %d", len(got), len(want))
	}
	if pages < 2 {
		t.Fatalf("scan covered %d pages; test needs a multi-page heap", pages)
	}
	// Reset rewinds to the first page.
	ps.Reset()
	rows, rids = rows[:0], rids[:0]
	rows, _, ok, err := ps.NextPage(rows, rids)
	if err != nil || !ok || len(rows) == 0 {
		t.Fatalf("after Reset: ok=%v err=%v rows=%d", ok, err, len(rows))
	}
}
