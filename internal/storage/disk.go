// Package storage implements the page-oriented storage layer of the engine:
// a simulated disk with I/O accounting, 4 KiB slotted pages, an LRU buffer
// pool with pinning, and heap files. Heap files support cluster families —
// tuples of several tables co-located on shared pages — which is the
// "composite object clustering" facility the paper's section 4 calls for
// (clustering of component tuples belonging to different tables, in the
// style of Starburst's IMS attachment).
package storage

import (
	"fmt"
	"sync"

	"sqlxnf/internal/faultinj"
)

// PageSize is the size of every page in bytes.
const PageSize = 4096

// PageID identifies a page on the disk.
type PageID uint32

// InvalidPage is the nil page id (no page).
const InvalidPage PageID = 0xFFFFFFFF

// DiskStats counts physical page I/O. The paper's clustering and extraction
// claims are about I/O volume, so the simulated disk counts every transfer.
type DiskStats struct {
	Reads  int64
	Writes int64
	Allocs int64
}

// Disk is a simulated block device: an in-memory array of pages with
// read/write accounting. It stands in for the real disks under Starburst;
// what the reproduction measures is page traffic, which the simulation
// counts exactly and deterministically.
type Disk struct {
	mu    sync.Mutex
	pages [][]byte
	stats DiskStats
	// inj is the optional fault injector (nil = probes inert). Set once at
	// engine construction, before any concurrent use.
	inj *faultinj.Injector
}

// NewDisk returns an empty simulated disk.
func NewDisk() *Disk { return &Disk{} }

// SetFaultInjector arms the disk's probe points. Call before first use.
func (d *Disk) SetFaultInjector(in *faultinj.Injector) { d.inj = in }

// Allocate reserves a fresh zeroed page and returns its id.
func (d *Disk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(len(d.pages))
	d.pages = append(d.pages, make([]byte, PageSize))
	d.stats.Allocs++
	return id
}

// Read copies page id into buf (which must be PageSize bytes).
func (d *Disk) Read(id PageID, buf []byte) error {
	if err := d.inj.Hit(faultinj.DiskRead); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	copy(buf, d.pages[id])
	d.stats.Reads++
	return nil
}

// Write copies buf (PageSize bytes) to page id.
func (d *Disk) Write(id PageID, buf []byte) error {
	if err := d.inj.Hit(faultinj.DiskWrite); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	copy(d.pages[id], buf)
	d.stats.Writes++
	return nil
}

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// Stats returns a snapshot of the I/O counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the I/O counters (allocations keep counting up).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Reads, d.stats.Writes = 0, 0
}
