package storage

import (
	"fmt"
	"sync"
	"testing"

	"sqlxnf/internal/types"
)

// morselHeap loads n rows into a fresh heap and returns it with the tag used.
func morselHeap(t *testing.T, n int) (*Heap, uint32) {
	t.Helper()
	bp := NewBufferPool(NewDisk(), 1<<14)
	h, err := CreateHeap(bp)
	if err != nil {
		t.Fatal(err)
	}
	const tag = 7
	for i := 0; i < n; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("r-%d", i))}
		if _, err := h.Insert(tag, row); err != nil {
			t.Fatal(err)
		}
	}
	return h, tag
}

// TestMorselDispatcherCoversChainOnce: concurrent workers claiming morsels
// collectively read every row exactly once, regardless of claim interleaving.
func TestMorselDispatcherCoversChainOnce(t *testing.T) {
	const total = 5000
	h, tag := morselHeap(t, total)
	for _, workers := range []int{1, 2, 4, 7} {
		disp, err := h.MorselDispatcher(3)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		seen := make(map[int64]int, total)
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := h.MorselReader(tag)
				var rows []types.Row
				for {
					pages := disp.Claim()
					if len(pages) == 0 {
						return
					}
					for _, id := range pages {
						rows = rows[:0]
						var rerr error
						rows, rerr = r.ReadPage(id, rows)
						if rerr != nil {
							errs[w] = rerr
							return
						}
						mu.Lock()
						for _, row := range rows {
							seen[row[0].Int()]++
						}
						mu.Unlock()
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(seen) != total {
			t.Fatalf("workers=%d: saw %d distinct rows, want %d", workers, len(seen), total)
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: row %d read %d times", workers, id, n)
			}
		}
	}
}

// TestMorselDispatcherSkipsForeignTags: a reader over one table of a cluster
// family never surfaces the other table's tuples.
func TestMorselDispatcherSkipsForeignTags(t *testing.T) {
	bp := NewBufferPool(NewDisk(), 1<<14)
	h, err := CreateHeap(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		tag := uint32(1 + i%2)
		if _, err := h.Insert(tag, types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	disp, err := h.MorselDispatcher(0)
	if err != nil {
		t.Fatal(err)
	}
	r := h.MorselReader(1)
	count := 0
	for {
		pages := disp.Claim()
		if len(pages) == 0 {
			break
		}
		for _, id := range pages {
			rows, err := r.ReadPage(id, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range rows {
				if row[0].Int()%2 != 0 {
					t.Fatalf("tag-1 reader surfaced tag-2 row %v", row)
				}
				count++
			}
		}
	}
	if count != 150 {
		t.Fatalf("tag-1 rows = %d, want 150", count)
	}
}
