package storage

import (
	"encoding/binary"
	"fmt"

	"sqlxnf/internal/types"
)

// RID locates a tuple: page id plus slot number.
type RID struct {
	Page PageID
	Slot uint16
}

// NilRID is the zero RID used as "no location".
var NilRID = RID{Page: InvalidPage}

// Valid reports whether the RID points at a page.
func (r RID) Valid() bool { return r.Page != InvalidPage }

// String renders the RID as page:slot.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Heap is a chain of slotted pages storing encoded rows. Several tables may
// share one heap (a cluster family); each cell is prefixed with the owning
// table's tag so per-table scans can filter. InsertNear places a tuple on
// (or close to) the page of a related tuple, which is how composite-object
// clustering co-locates parents with their children.
type Heap struct {
	bp    *BufferPool
	first PageID
	last  PageID // append hint; rediscovered on open
}

// CreateHeap allocates an empty heap.
func CreateHeap(bp *BufferPool) (*Heap, error) {
	p, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	id := p.ID
	bp.Unpin(id, true)
	return &Heap{bp: bp, first: id, last: id}, nil
}

// OpenHeap attaches to an existing heap rooted at first.
func OpenHeap(bp *BufferPool, first PageID) (*Heap, error) {
	h := &Heap{bp: bp, first: first, last: first}
	// Walk to the tail so appends go to the end.
	id := first
	for {
		p, err := bp.Fetch(id)
		if err != nil {
			return nil, err
		}
		next := p.Next()
		bp.Unpin(id, false)
		if next == InvalidPage {
			break
		}
		id = next
	}
	h.last = id
	return h, nil
}

// FirstPage returns the root page id (persisted in the catalog).
func (h *Heap) FirstPage() PageID { return h.first }

// encodeCell prefixes the row encoding with the owner tag.
func encodeCell(tag uint32, row types.Row) []byte {
	buf := binary.AppendUvarint(nil, uint64(tag))
	return row.Encode(buf)
}

// decodeCell splits a cell into tag and row.
func decodeCell(cell []byte) (uint32, types.Row, error) {
	tag, n := binary.Uvarint(cell)
	if n <= 0 {
		return 0, nil, fmt.Errorf("storage: corrupt cell tag")
	}
	row, _, err := types.DecodeRow(cell[n:])
	return uint32(tag), row, err
}

// Insert appends the row (owned by tag) and returns its RID.
func (h *Heap) Insert(tag uint32, row types.Row) (RID, error) {
	cell := encodeCell(tag, row)
	if len(cell) > PageSize-pageHeaderSize-slotSize {
		return NilRID, fmt.Errorf("storage: row of %d bytes exceeds page capacity", len(cell))
	}
	// Try the tail page first.
	p, err := h.bp.Fetch(h.last)
	if err != nil {
		return NilRID, err
	}
	if slot, ok := p.InsertCell(cell); ok {
		rid := RID{Page: p.ID, Slot: uint16(slot)}
		h.bp.Unpin(p.ID, true)
		return rid, nil
	}
	// Tail full: chain a new page.
	np, err := h.bp.NewPage()
	if err != nil {
		h.bp.Unpin(p.ID, false)
		return NilRID, err
	}
	p.SetNext(np.ID)
	h.bp.Unpin(p.ID, true)
	slot, ok := np.InsertCell(cell)
	if !ok {
		h.bp.Unpin(np.ID, true)
		return NilRID, fmt.Errorf("storage: fresh page cannot hold %d-byte row", len(cell))
	}
	rid := RID{Page: np.ID, Slot: uint16(slot)}
	h.last = np.ID
	h.bp.Unpin(np.ID, true)
	return rid, nil
}

// InsertOnFreshPage places the row on a newly allocated page at the end of
// the chain. Cluster-family loaders use it to give each composite-object
// root its own page neighborhood, which children then fill via InsertNear.
func (h *Heap) InsertOnFreshPage(tag uint32, row types.Row) (RID, error) {
	cell := encodeCell(tag, row)
	if len(cell) > PageSize-pageHeaderSize-slotSize {
		return NilRID, fmt.Errorf("storage: row of %d bytes exceeds page capacity", len(cell))
	}
	tail, err := h.bp.Fetch(h.last)
	if err != nil {
		return NilRID, err
	}
	np, err := h.bp.NewPage()
	if err != nil {
		h.bp.Unpin(tail.ID, false)
		return NilRID, err
	}
	tail.SetNext(np.ID)
	h.bp.Unpin(tail.ID, true)
	slot, ok := np.InsertCell(cell)
	if !ok {
		h.bp.Unpin(np.ID, true)
		return NilRID, fmt.Errorf("storage: fresh page cannot hold %d-byte row", len(cell))
	}
	rid := RID{Page: np.ID, Slot: uint16(slot)}
	h.last = np.ID
	h.bp.Unpin(np.ID, true)
	return rid, nil
}

// InsertNear tries to place the row on the same page as near — the cluster
// placement policy. When that page is full it falls back to a normal append.
func (h *Heap) InsertNear(tag uint32, near RID, row types.Row) (RID, error) {
	if !near.Valid() {
		return h.Insert(tag, row)
	}
	cell := encodeCell(tag, row)
	p, err := h.bp.Fetch(near.Page)
	if err != nil {
		return NilRID, err
	}
	if slot, ok := p.InsertCell(cell); ok {
		rid := RID{Page: p.ID, Slot: uint16(slot)}
		h.bp.Unpin(p.ID, true)
		return rid, nil
	}
	h.bp.Unpin(p.ID, false)
	return h.Insert(tag, row)
}

// Get fetches the row at rid, verifying the owner tag.
func (h *Heap) Get(tag uint32, rid RID) (types.Row, error) {
	p, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.bp.Unpin(rid.Page, false)
	cell, err := p.Cell(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	ctag, row, err := decodeCell(cell)
	if err != nil {
		return nil, err
	}
	if ctag != tag {
		return nil, fmt.Errorf("storage: rid %v belongs to table tag %d, not %d", rid, ctag, tag)
	}
	return row, nil
}

// Update rewrites the row at rid. When the new image no longer fits on the
// page the tuple moves and the new RID is returned; callers must fix
// secondary structures that reference the old RID.
func (h *Heap) Update(tag uint32, rid RID, row types.Row) (RID, error) {
	cell := encodeCell(tag, row)
	p, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return NilRID, err
	}
	// Verify ownership before overwriting.
	old, err := p.Cell(int(rid.Slot))
	if err != nil {
		h.bp.Unpin(rid.Page, false)
		return NilRID, err
	}
	if ctag, _, derr := decodeCell(old); derr != nil || ctag != tag {
		h.bp.Unpin(rid.Page, false)
		if derr != nil {
			return NilRID, derr
		}
		return NilRID, fmt.Errorf("storage: update of rid %v owned by tag %d, not %d", rid, ctag, tag)
	}
	ok, err := p.UpdateCell(int(rid.Slot), cell)
	if err != nil {
		h.bp.Unpin(rid.Page, false)
		return NilRID, err
	}
	if ok {
		h.bp.Unpin(rid.Page, true)
		return rid, nil
	}
	// Move: delete here, insert elsewhere.
	if err := p.DeleteCell(int(rid.Slot)); err != nil {
		h.bp.Unpin(rid.Page, false)
		return NilRID, err
	}
	h.bp.Unpin(rid.Page, true)
	return h.Insert(tag, row)
}

// Delete removes the tuple at rid.
func (h *Heap) Delete(tag uint32, rid RID) error {
	p, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return err
	}
	cell, err := p.Cell(int(rid.Slot))
	if err != nil {
		h.bp.Unpin(rid.Page, false)
		return err
	}
	ctag, _, err := decodeCell(cell)
	if err != nil {
		h.bp.Unpin(rid.Page, false)
		return err
	}
	if ctag != tag {
		h.bp.Unpin(rid.Page, false)
		return fmt.Errorf("storage: delete of rid %v owned by tag %d, not %d", rid, ctag, tag)
	}
	err = p.DeleteCell(int(rid.Slot))
	h.bp.Unpin(rid.Page, err == nil)
	return err
}

// Scan visits every live row owned by tag in physical order. The callback
// returns stop=true to end the scan early.
func (h *Heap) Scan(tag uint32, fn func(rid RID, row types.Row) (stop bool, err error)) error {
	return h.scan(func(rid RID, ctag uint32, row types.Row) (bool, error) {
		if ctag != tag {
			return false, nil
		}
		return fn(rid, row)
	})
}

// ScanAll visits every live row of every owner, exposing the tag. The cache
// loader uses it to consume heterogeneous answer streams.
func (h *Heap) ScanAll(fn func(rid RID, tag uint32, row types.Row) (stop bool, err error)) error {
	return h.scan(fn)
}

func (h *Heap) scan(fn func(rid RID, tag uint32, row types.Row) (bool, error)) error {
	id := h.first
	for id != InvalidPage {
		p, err := h.bp.Fetch(id)
		if err != nil {
			return err
		}
		var stop bool
		err = p.LiveCells(func(slot int, cell []byte) error {
			tag, row, derr := decodeCell(cell)
			if derr != nil {
				return derr
			}
			s, ferr := fn(RID{Page: id, Slot: uint16(slot)}, tag, row)
			if ferr != nil {
				return ferr
			}
			if s {
				stop = true
				return errStopScan
			}
			return nil
		})
		next := p.Next()
		h.bp.Unpin(id, false)
		if err != nil && err != errStopScan {
			return err
		}
		if stop {
			return nil
		}
		id = next
	}
	return nil
}

var errStopScan = fmt.Errorf("storage: stop scan sentinel")

// PageScanner streams the live rows one table owns page-at-a-time, in
// physical order. Unlike Scan it is pull-based: each NextPage call fetches
// and decodes exactly one non-empty page, so a consumer holds at most a
// page's worth of rows at a time — the substrate for the executor's batched
// SeqScan, which no longer materializes whole tables at Open.
type PageScanner struct {
	h    *Heap
	tag  uint32
	next PageID
	dec  types.RowDecoder
}

// PageScanner returns a scanner positioned at the start of the heap chain
// that visits only rows owned by tag.
func (h *Heap) PageScanner(tag uint32) *PageScanner {
	return &PageScanner{h: h, tag: tag, next: h.first}
}

// Reset rewinds the scanner to the start of the chain.
func (ps *PageScanner) Reset() { ps.next = ps.h.first }

// NextPage appends the live rows of the next page holding any rows of the
// scanned table to rows (and their locations to rids), skipping pages that
// hold none. It reports ok=false at the end of the chain. Cells owned by
// other tables are skipped before row decode, so clustered families pay only
// a tag check for foreign tuples.
func (ps *PageScanner) NextPage(rows []types.Row, rids []RID) ([]types.Row, []RID, bool, error) {
	for ps.next != InvalidPage {
		id := ps.next
		p, err := ps.h.bp.Fetch(id)
		if err != nil {
			return rows, rids, false, err
		}
		before := len(rows)
		err = p.LiveCells(func(slot int, cell []byte) error {
			tag, n := binary.Uvarint(cell)
			if n <= 0 {
				return fmt.Errorf("storage: corrupt cell tag")
			}
			if uint32(tag) != ps.tag {
				return nil
			}
			row, _, derr := ps.dec.Decode(cell[n:])
			if derr != nil {
				return derr
			}
			rows = append(rows, row)
			rids = append(rids, RID{Page: id, Slot: uint16(slot)})
			return nil
		})
		ps.next = p.Next()
		ps.h.bp.Unpin(id, false)
		if err != nil {
			return rows, rids, false, err
		}
		if len(rows) > before {
			return rows, rids, true, nil
		}
	}
	return rows, rids, false, nil
}

// PageCount walks the chain and returns the number of pages in the heap.
func (h *Heap) PageCount() (int, error) {
	n := 0
	id := h.first
	for id != InvalidPage {
		p, err := h.bp.Fetch(id)
		if err != nil {
			return 0, err
		}
		next := p.Next()
		h.bp.Unpin(id, false)
		n++
		id = next
	}
	return n, nil
}
