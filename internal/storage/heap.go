package storage

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sqlxnf/internal/types"
)

// RID locates a tuple: page id plus slot number.
type RID struct {
	Page PageID
	Slot uint16
}

// NilRID is the zero RID used as "no location".
var NilRID = RID{Page: InvalidPage}

// Valid reports whether the RID points at a page.
func (r RID) Valid() bool { return r.Page != InvalidPage }

// String renders the RID as page:slot.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// RowVer carries the MVCC stamps of one row version: the transaction that
// created it and (if any) the transaction that delete-marked it. The zero
// value means "frozen": created before every live snapshot, never deleted —
// visible to everyone. Rows materialized by recovery and pre-MVCC loaders
// carry frozen stamps.
type RowVer struct {
	Created uint64
	Deleted uint64
}

// VisFunc decides whether a row version is visible to a snapshot. A nil
// VisFunc is the "latest committed" default: everything not delete-marked.
type VisFunc func(RowVer) bool

// VersionEntry pairs a row location with its MVCC stamps (vacuum sweep).
type VersionEntry struct {
	RID RID
	Ver RowVer
}

// Heap is a chain of slotted pages storing encoded rows. Several tables may
// share one heap (a cluster family); each cell is prefixed with the owning
// table's tag so per-table scans can filter. InsertNear places a tuple on
// (or close to) the page of a related tuple, which is how composite-object
// clustering co-locates parents with their children.
//
// Under MVCC readers no longer hold table locks, so the heap carries its own
// latch: mu guards the page chain, page bytes, and the version map. Public
// operations latch and delegate to unexported unlatched implementations
// (Update re-enters Insert internally). Scan callbacks run with the latch
// released — rows are decoded page-at-a-time into copies first — so a
// callback may safely touch other tables of the same cluster family.
type Heap struct {
	bp    *BufferPool
	mu    sync.RWMutex
	first PageID
	last  PageID // append hint; rediscovered on open
	vers  map[RID]RowVer
}

// CreateHeap allocates an empty heap.
func CreateHeap(bp *BufferPool) (*Heap, error) {
	p, err := bp.NewPage()
	if err != nil {
		return nil, err
	}
	id := p.ID
	bp.Unpin(id, true)
	return &Heap{bp: bp, first: id, last: id, vers: make(map[RID]RowVer)}, nil
}

// OpenHeap attaches to an existing heap rooted at first.
func OpenHeap(bp *BufferPool, first PageID) (*Heap, error) {
	h := &Heap{bp: bp, first: first, last: first, vers: make(map[RID]RowVer)}
	// Walk to the tail so appends go to the end.
	id := first
	for {
		p, err := bp.Fetch(id)
		if err != nil {
			return nil, err
		}
		next := p.Next()
		bp.Unpin(id, false)
		if next == InvalidPage {
			break
		}
		id = next
	}
	h.last = id
	return h, nil
}

// FirstPage returns the root page id (persisted in the catalog).
func (h *Heap) FirstPage() PageID { return h.first }

// encodeCell prefixes the row encoding with the owner tag.
func encodeCell(tag uint32, row types.Row) []byte {
	buf := binary.AppendUvarint(nil, uint64(tag))
	return row.Encode(buf)
}

// decodeCell splits a cell into tag and row.
func decodeCell(cell []byte) (uint32, types.Row, error) {
	tag, n := binary.Uvarint(cell)
	if n <= 0 {
		return 0, nil, fmt.Errorf("storage: corrupt cell tag")
	}
	row, _, err := types.DecodeRow(cell[n:])
	return uint32(tag), row, err
}

// visibleLocked applies vis (or the latest-committed default) to the stamps
// of rid. Callers hold h.mu in either mode.
func (h *Heap) visibleLocked(rid RID, vis VisFunc) bool {
	ver := h.vers[rid]
	if vis == nil {
		return ver.Deleted == 0
	}
	return vis(ver)
}

// Insert appends the row (owned by tag) with frozen stamps and returns its
// RID. Loaders and recovery use it; transactional writers use InsertTx.
func (h *Heap) Insert(tag uint32, row types.Row) (RID, error) {
	return h.InsertTx(tag, row, 0)
}

// InsertTx appends the row stamped as created by tx (0 = frozen).
func (h *Heap) InsertTx(tag uint32, row types.Row, tx uint64) (RID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.insertLocked(tag, row, tx)
}

func (h *Heap) insertLocked(tag uint32, row types.Row, tx uint64) (RID, error) {
	cell := encodeCell(tag, row)
	if len(cell) > PageSize-pageHeaderSize-slotSize {
		return NilRID, fmt.Errorf("storage: row of %d bytes exceeds page capacity", len(cell))
	}
	// Try the tail page first.
	p, err := h.bp.Fetch(h.last)
	if err != nil {
		return NilRID, err
	}
	if slot, ok := p.InsertCell(cell); ok {
		rid := RID{Page: p.ID, Slot: uint16(slot)}
		h.bp.Unpin(p.ID, true)
		h.stampLocked(rid, tx)
		return rid, nil
	}
	// Tail full: chain a new page.
	np, err := h.bp.NewPage()
	if err != nil {
		h.bp.Unpin(p.ID, false)
		return NilRID, err
	}
	p.SetNext(np.ID)
	h.bp.Unpin(p.ID, true)
	slot, ok := np.InsertCell(cell)
	if !ok {
		h.bp.Unpin(np.ID, true)
		return NilRID, fmt.Errorf("storage: fresh page cannot hold %d-byte row", len(cell))
	}
	rid := RID{Page: np.ID, Slot: uint16(slot)}
	h.last = np.ID
	h.bp.Unpin(np.ID, true)
	h.stampLocked(rid, tx)
	return rid, nil
}

// stampLocked records the create stamp of a fresh tuple. A reused slot may
// still carry stamps from a vacuumed predecessor, so tx==0 must clear them.
func (h *Heap) stampLocked(rid RID, tx uint64) {
	if tx != 0 {
		h.vers[rid] = RowVer{Created: tx}
	} else {
		delete(h.vers, rid)
	}
}

// InsertOnFreshPage places the row on a newly allocated page at the end of
// the chain. Cluster-family loaders use it to give each composite-object
// root its own page neighborhood, which children then fill via InsertNear.
func (h *Heap) InsertOnFreshPage(tag uint32, row types.Row) (RID, error) {
	return h.InsertOnFreshPageTx(tag, row, 0)
}

// InsertOnFreshPageTx is InsertOnFreshPage with a create stamp.
func (h *Heap) InsertOnFreshPageTx(tag uint32, row types.Row, tx uint64) (RID, error) {
	cell := encodeCell(tag, row)
	if len(cell) > PageSize-pageHeaderSize-slotSize {
		return NilRID, fmt.Errorf("storage: row of %d bytes exceeds page capacity", len(cell))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	tail, err := h.bp.Fetch(h.last)
	if err != nil {
		return NilRID, err
	}
	np, err := h.bp.NewPage()
	if err != nil {
		h.bp.Unpin(tail.ID, false)
		return NilRID, err
	}
	tail.SetNext(np.ID)
	h.bp.Unpin(tail.ID, true)
	slot, ok := np.InsertCell(cell)
	if !ok {
		h.bp.Unpin(np.ID, true)
		return NilRID, fmt.Errorf("storage: fresh page cannot hold %d-byte row", len(cell))
	}
	rid := RID{Page: np.ID, Slot: uint16(slot)}
	h.last = np.ID
	h.bp.Unpin(np.ID, true)
	h.stampLocked(rid, tx)
	return rid, nil
}

// InsertNear tries to place the row on the same page as near — the cluster
// placement policy. When that page is full it falls back to a normal append.
func (h *Heap) InsertNear(tag uint32, near RID, row types.Row) (RID, error) {
	return h.InsertNearTx(tag, near, row, 0)
}

// InsertNearTx is InsertNear with a create stamp.
func (h *Heap) InsertNearTx(tag uint32, near RID, row types.Row, tx uint64) (RID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !near.Valid() {
		return h.insertLocked(tag, row, tx)
	}
	cell := encodeCell(tag, row)
	p, err := h.bp.Fetch(near.Page)
	if err != nil {
		return NilRID, err
	}
	if slot, ok := p.InsertCell(cell); ok {
		rid := RID{Page: p.ID, Slot: uint16(slot)}
		h.bp.Unpin(p.ID, true)
		h.stampLocked(rid, tx)
		return rid, nil
	}
	h.bp.Unpin(p.ID, false)
	return h.insertLocked(tag, row, tx)
}

// Get fetches the row at rid, verifying the owner tag. It reads the physical
// latest version regardless of MVCC stamps; visibility-aware readers use
// GetVisible.
func (h *Heap) Get(tag uint32, rid RID) (types.Row, error) {
	row, _, err := h.GetVer(tag, rid)
	return row, err
}

// GetVer fetches the row at rid plus its MVCC stamps.
func (h *Heap) GetVer(tag uint32, rid RID) (types.Row, RowVer, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	row, err := h.getLocked(tag, rid)
	if err != nil {
		return nil, RowVer{}, err
	}
	return row, h.vers[rid], nil
}

func (h *Heap) getLocked(tag uint32, rid RID) (types.Row, error) {
	p, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.bp.Unpin(rid.Page, false)
	cell, err := p.Cell(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	ctag, row, err := decodeCell(cell)
	if err != nil {
		return nil, err
	}
	if ctag != tag {
		return nil, fmt.Errorf("storage: rid %v belongs to table tag %d, not %d", rid, ctag, tag)
	}
	return row, nil
}

// GetVisible fetches the row at rid if it exists, is owned by tag, and is
// visible under vis. ok=false covers vacuumed slots, slots reclaimed by
// another table of the family, and versions invisible to the snapshot — all
// the states a dangling index entry can legitimately point at.
func (h *Heap) GetVisible(tag uint32, rid RID, vis VisFunc) (types.Row, bool, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if !h.visibleLocked(rid, vis) {
		return nil, false, nil
	}
	p, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return nil, false, err
	}
	defer h.bp.Unpin(rid.Page, false)
	cell, err := p.Cell(int(rid.Slot))
	if err != nil {
		return nil, false, nil // slot vacuumed or never filled: treat as gone
	}
	ctag, row, err := decodeCell(cell)
	if err != nil {
		return nil, false, err
	}
	if ctag != tag {
		return nil, false, nil
	}
	return row, true, nil
}

// ReadAny fetches the row at rid along with its owning tag, regardless of
// visibility. The vacuum sweep uses it to compute index keys of dead rows.
func (h *Heap) ReadAny(rid RID) (uint32, types.Row, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	p, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return 0, nil, err
	}
	defer h.bp.Unpin(rid.Page, false)
	cell, err := p.Cell(int(rid.Slot))
	if err != nil {
		return 0, nil, err
	}
	return decodeCell(cell)
}

// Version returns the MVCC stamps recorded for rid (zero value = frozen).
func (h *Heap) Version(rid RID) RowVer {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.vers[rid]
}

// MarkDeleted delete-stamps the tuple at rid with tx, verifying the owner
// tag. The tuple and its index entries stay physically present so older
// snapshots can still reach it; vacuum reclaims it once no snapshot can.
func (h *Heap) MarkDeleted(tag uint32, rid RID, tx uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, err := h.getLocked(tag, rid); err != nil {
		return err
	}
	ver := h.vers[rid]
	ver.Deleted = tx
	h.vers[rid] = ver
	return nil
}

// ClearDeleted removes the delete stamp at rid (rollback undo).
func (h *Heap) ClearDeleted(rid RID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ver := h.vers[rid]
	ver.Deleted = 0
	if ver == (RowVer{}) {
		delete(h.vers, rid)
	} else {
		h.vers[rid] = ver
	}
}

// VersionEntries snapshots the version map for the vacuum sweep.
func (h *Heap) VersionEntries() []VersionEntry {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]VersionEntry, 0, len(h.vers))
	for rid, ver := range h.vers {
		out = append(out, VersionEntry{RID: rid, Ver: ver})
	}
	return out
}

// PurgeVersion physically deletes the tuple at rid if its stamps still equal
// ver (vacuum reclaim). Reports whether the purge happened.
func (h *Heap) PurgeVersion(rid RID, ver RowVer) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.vers[rid] != ver {
		return false, nil
	}
	p, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return false, err
	}
	err = p.DeleteCell(int(rid.Slot))
	h.bp.Unpin(rid.Page, err == nil)
	if err != nil {
		return false, err
	}
	delete(h.vers, rid)
	return true, nil
}

// FreezeVersion drops the version-map entry for a row every live snapshot
// can see (vacuum bookkeeping: missing entry = frozen = visible to all).
func (h *Heap) FreezeVersion(rid RID, ver RowVer) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.vers[rid] != ver {
		return false
	}
	delete(h.vers, rid)
	return true
}

// Update rewrites the row at rid in place. When the new image no longer fits
// on the page the tuple moves (its version stamps move with it) and the new
// RID is returned; callers must fix secondary structures that reference the
// old RID. MVCC writers do not use Update — they insert a new version and
// delete-mark the old — but recovery replay and undo still rewrite in place.
func (h *Heap) Update(tag uint32, rid RID, row types.Row) (RID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cell := encodeCell(tag, row)
	p, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return NilRID, err
	}
	// Verify ownership before overwriting.
	old, err := p.Cell(int(rid.Slot))
	if err != nil {
		h.bp.Unpin(rid.Page, false)
		return NilRID, err
	}
	if ctag, _, derr := decodeCell(old); derr != nil || ctag != tag {
		h.bp.Unpin(rid.Page, false)
		if derr != nil {
			return NilRID, derr
		}
		return NilRID, fmt.Errorf("storage: update of rid %v owned by tag %d, not %d", rid, ctag, tag)
	}
	ok, err := p.UpdateCell(int(rid.Slot), cell)
	if err != nil {
		h.bp.Unpin(rid.Page, false)
		return NilRID, err
	}
	if ok {
		h.bp.Unpin(rid.Page, true)
		return rid, nil
	}
	// Move: delete here, insert elsewhere; carry the stamps along.
	if err := p.DeleteCell(int(rid.Slot)); err != nil {
		h.bp.Unpin(rid.Page, false)
		return NilRID, err
	}
	h.bp.Unpin(rid.Page, true)
	ver := h.vers[rid]
	delete(h.vers, rid)
	nrid, err := h.insertLocked(tag, row, 0)
	if err == nil && ver != (RowVer{}) {
		h.vers[nrid] = ver
	}
	return nrid, err
}

// Delete physically removes the tuple at rid (undo and recovery; MVCC
// deletes go through MarkDeleted instead).
func (h *Heap) Delete(tag uint32, rid RID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, err := h.bp.Fetch(rid.Page)
	if err != nil {
		return err
	}
	cell, err := p.Cell(int(rid.Slot))
	if err != nil {
		h.bp.Unpin(rid.Page, false)
		return err
	}
	ctag, _, err := decodeCell(cell)
	if err != nil {
		h.bp.Unpin(rid.Page, false)
		return err
	}
	if ctag != tag {
		h.bp.Unpin(rid.Page, false)
		return fmt.Errorf("storage: delete of rid %v owned by tag %d, not %d", rid, ctag, tag)
	}
	err = p.DeleteCell(int(rid.Slot))
	h.bp.Unpin(rid.Page, err == nil)
	if err == nil {
		delete(h.vers, rid)
	}
	return err
}

// Scan visits every visible row owned by tag in physical order under the
// latest-committed default snapshot. The callback returns stop=true to end
// the scan early; it runs with the heap latch released.
func (h *Heap) Scan(tag uint32, fn func(rid RID, row types.Row) (stop bool, err error)) error {
	return h.ScanVis(tag, nil, fn)
}

// ScanVis is Scan under an explicit visibility snapshot.
func (h *Heap) ScanVis(tag uint32, vis VisFunc, fn func(rid RID, row types.Row) (stop bool, err error)) error {
	return h.scan(vis, func(rid RID, ctag uint32, row types.Row) (bool, error) {
		if ctag != tag {
			return false, nil
		}
		return fn(rid, row)
	})
}

// ScanAll visits every visible row of every owner, exposing the tag. The
// cache loader uses it to consume heterogeneous answer streams.
func (h *Heap) ScanAll(fn func(rid RID, tag uint32, row types.Row) (stop bool, err error)) error {
	return h.scan(nil, fn)
}

func (h *Heap) scan(vis VisFunc, fn func(rid RID, tag uint32, row types.Row) (bool, error)) error {
	type item struct {
		rid RID
		tag uint32
		row types.Row
	}
	var items []item
	h.mu.RLock()
	id := h.first
	h.mu.RUnlock()
	for id != InvalidPage {
		items = items[:0]
		var next PageID
		// Latch and pin released by defer: a panic out of the buffer pool
		// (fault injection) must not leave the latch held — the session's
		// panic containment keeps running against this heap.
		err := func() error {
			h.mu.RLock()
			defer h.mu.RUnlock()
			p, err := h.bp.Fetch(id)
			if err != nil {
				return err
			}
			defer h.bp.Unpin(id, false)
			err = p.LiveCells(func(slot int, cell []byte) error {
				rid := RID{Page: id, Slot: uint16(slot)}
				if !h.visibleLocked(rid, vis) {
					return nil
				}
				tag, row, derr := decodeCell(cell)
				if derr != nil {
					return derr
				}
				items = append(items, item{rid: rid, tag: tag, row: row})
				return nil
			})
			next = p.Next()
			return err
		}()
		if err != nil {
			return err
		}
		for _, it := range items {
			stop, ferr := fn(it.rid, it.tag, it.row)
			if ferr != nil {
				return ferr
			}
			if stop {
				return nil
			}
		}
		id = next
	}
	return nil
}

// PageScanner streams the visible rows one table owns page-at-a-time, in
// physical order. Unlike Scan it is pull-based: each NextPage call fetches
// and decodes exactly one non-empty page, so a consumer holds at most a
// page's worth of rows at a time — the substrate for the executor's batched
// SeqScan, which no longer materializes whole tables at Open.
type PageScanner struct {
	h    *Heap
	tag  uint32
	next PageID
	dec  types.RowDecoder
	// Vis is the snapshot filter; nil scans latest-committed rows.
	Vis VisFunc
}

// PageScanner returns a scanner positioned at the start of the heap chain
// that visits only rows owned by tag.
func (h *Heap) PageScanner(tag uint32) *PageScanner {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return &PageScanner{h: h, tag: tag, next: h.first}
}

// Reset rewinds the scanner to the start of the chain.
func (ps *PageScanner) Reset() { ps.next = ps.h.first }

// NextPage appends the visible rows of the next page holding any rows of the
// scanned table to rows (and their locations to rids), skipping pages that
// hold none. It reports ok=false at the end of the chain. Cells owned by
// other tables are skipped before row decode, so clustered families pay only
// a tag check for foreign tuples.
func (ps *PageScanner) NextPage(rows []types.Row, rids []RID) ([]types.Row, []RID, bool, error) {
	h := ps.h
	for ps.next != InvalidPage {
		id := ps.next
		before := len(rows)
		// Latch and pin released by defer: a panic out of the buffer pool
		// (fault injection) must not leave the latch held.
		err := func() error {
			h.mu.RLock()
			defer h.mu.RUnlock()
			p, err := h.bp.Fetch(id)
			if err != nil {
				return err
			}
			defer h.bp.Unpin(id, false)
			err = p.LiveCells(func(slot int, cell []byte) error {
				tag, n := binary.Uvarint(cell)
				if n <= 0 {
					return fmt.Errorf("storage: corrupt cell tag")
				}
				if uint32(tag) != ps.tag {
					return nil
				}
				rid := RID{Page: id, Slot: uint16(slot)}
				if !h.visibleLocked(rid, ps.Vis) {
					return nil
				}
				row, _, derr := ps.dec.Decode(cell[n:])
				if derr != nil {
					return derr
				}
				rows = append(rows, row)
				rids = append(rids, rid)
				return nil
			})
			ps.next = p.Next()
			return err
		}()
		if err != nil {
			return rows, rids, false, err
		}
		if len(rows) > before {
			return rows, rids, true, nil
		}
	}
	return rows, rids, false, nil
}

// PageCount walks the chain and returns the number of pages in the heap.
func (h *Heap) PageCount() (int, error) {
	n := 0
	h.mu.RLock()
	defer h.mu.RUnlock()
	id := h.first
	for id != InvalidPage {
		p, err := h.bp.Fetch(id)
		if err != nil {
			return 0, err
		}
		next := p.Next()
		h.bp.Unpin(id, false)
		n++
		id = next
	}
	return n, nil
}
