package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted page layout:
//
//	offset 0:  numSlots   uint16
//	offset 2:  freeEnd    uint16  (cells grow down from PageSize to freeEnd)
//	offset 4:  next       uint32  (PageID of next page in the heap chain)
//	offset 8:  slot array: numSlots entries of [cellOff uint16, cellLen uint16]
//
// Dead slots have cellOff == 0. Cell space is reclaimed by compaction when
// an insert would otherwise fail.
const (
	pageHeaderSize = 8
	slotSize       = 4
	deadOffset     = 0
)

// Page wraps a pinned buffer-pool frame with slotted-page operations. The
// caller must Unpin it through the pool when done.
type Page struct {
	ID   PageID
	Data []byte // always PageSize bytes, aliased with the buffer frame
}

// InitPage formats the frame as an empty slotted page.
func (p *Page) Init() {
	for i := range p.Data {
		p.Data[i] = 0
	}
	p.setNumSlots(0)
	p.setFreeEnd(PageSize)
	p.SetNext(InvalidPage)
}

func (p *Page) numSlots() int     { return int(binary.LittleEndian.Uint16(p.Data[0:])) }
func (p *Page) setNumSlots(n int) { binary.LittleEndian.PutUint16(p.Data[0:], uint16(n)) }

// setFreeEnd stores the cell-area floor. PageSize itself does not fit in a
// uint16, so an empty page stores the 0xFFFF sentinel.
func (p *Page) setFreeEnd(n int) {
	if n == PageSize {
		binary.LittleEndian.PutUint16(p.Data[2:], 0xFFFF)
		return
	}
	binary.LittleEndian.PutUint16(p.Data[2:], uint16(n))
}

func (p *Page) realFreeEnd() int {
	v := binary.LittleEndian.Uint16(p.Data[2:])
	if v == 0xFFFF {
		return PageSize
	}
	return int(v)
}

// Next returns the next page in the chain, or InvalidPage.
func (p *Page) Next() PageID { return PageID(binary.LittleEndian.Uint32(p.Data[4:])) }

// SetNext links the page chain.
func (p *Page) SetNext(id PageID) { binary.LittleEndian.PutUint32(p.Data[4:], uint32(id)) }

// NumSlots returns the slot-directory size (including dead slots).
func (p *Page) NumSlots() int { return p.numSlots() }

func (p *Page) slot(i int) (off, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.Data[base:])), int(binary.LittleEndian.Uint16(p.Data[base+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.Data[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.Data[base+2:], uint16(length))
}

// FreeSpace returns the number of payload bytes available for one more cell
// (accounting for the slot-directory entry it would need).
func (p *Page) FreeSpace() int {
	free := p.realFreeEnd() - (pageHeaderSize + p.numSlots()*slotSize)
	free -= slotSize // the new cell needs a directory entry
	if free < 0 {
		return 0
	}
	return free
}

// usedCellBytes sums the live cell payload sizes.
func (p *Page) usedCellBytes() int {
	n := 0
	for i := 0; i < p.numSlots(); i++ {
		off, l := p.slot(i)
		if off != deadOffset {
			n += l
		}
	}
	return n
}

// InsertCell stores data in the page and returns the slot number. It reuses
// dead slots and compacts fragmented space. ok is false when the cell cannot
// fit even after compaction.
func (p *Page) InsertCell(data []byte) (slot int, ok bool) {
	if len(data) == 0 || len(data) > PageSize-pageHeaderSize-slotSize {
		return 0, false
	}
	// Find a dead slot to reuse, else plan to append one.
	slot = -1
	for i := 0; i < p.numSlots(); i++ {
		if off, _ := p.slot(i); off == deadOffset {
			slot = i
			break
		}
	}
	needDir := 0
	if slot == -1 {
		needDir = slotSize
	}
	contiguous := p.realFreeEnd() - (pageHeaderSize + p.numSlots()*slotSize) - needDir
	if contiguous < len(data) {
		// Try compaction: total free might suffice even if fragmented.
		total := PageSize - pageHeaderSize - p.numSlots()*slotSize - needDir - p.usedCellBytes()
		if total < len(data) {
			return 0, false
		}
		p.compact()
		contiguous = p.realFreeEnd() - (pageHeaderSize + p.numSlots()*slotSize) - needDir
		if contiguous < len(data) {
			return 0, false
		}
	}
	newEnd := p.realFreeEnd() - len(data)
	copy(p.Data[newEnd:], data)
	p.setFreeEnd(newEnd)
	if slot == -1 {
		slot = p.numSlots()
		p.setNumSlots(slot + 1)
	}
	p.setSlot(slot, newEnd, len(data))
	return slot, true
}

// Cell returns the payload of a live slot.
func (p *Page) Cell(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.numSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range on page %d", slot, p.ID)
	}
	off, l := p.slot(slot)
	if off == deadOffset {
		return nil, fmt.Errorf("storage: slot %d on page %d is dead", slot, p.ID)
	}
	return p.Data[off : off+l], nil
}

// DeleteCell marks a slot dead. The space is reclaimed lazily by compaction.
func (p *Page) DeleteCell(slot int) error {
	if slot < 0 || slot >= p.numSlots() {
		return fmt.Errorf("storage: slot %d out of range on page %d", slot, p.ID)
	}
	off, _ := p.slot(slot)
	if off == deadOffset {
		return fmt.Errorf("storage: slot %d on page %d already dead", slot, p.ID)
	}
	p.setSlot(slot, deadOffset, 0)
	return nil
}

// UpdateCell replaces the payload of a slot in place when possible. ok is
// false when the new payload does not fit; the caller then deletes and
// re-inserts elsewhere.
func (p *Page) UpdateCell(slot int, data []byte) (ok bool, err error) {
	if slot < 0 || slot >= p.numSlots() {
		return false, fmt.Errorf("storage: slot %d out of range on page %d", slot, p.ID)
	}
	off, l := p.slot(slot)
	if off == deadOffset {
		return false, fmt.Errorf("storage: slot %d on page %d is dead", slot, p.ID)
	}
	if len(data) <= l {
		copy(p.Data[off:], data)
		p.setSlot(slot, off, len(data))
		return true, nil
	}
	// Try delete+reinsert on the same page, keeping the same slot number.
	p.setSlot(slot, deadOffset, 0)
	contiguous := p.realFreeEnd() - (pageHeaderSize + p.numSlots()*slotSize)
	if contiguous < len(data) {
		total := PageSize - pageHeaderSize - p.numSlots()*slotSize - p.usedCellBytes()
		if total < len(data) {
			p.setSlot(slot, off, l) // restore
			return false, nil
		}
		p.compact()
		contiguous = p.realFreeEnd() - (pageHeaderSize + p.numSlots()*slotSize)
		if contiguous < len(data) {
			p.setSlot(slot, off, l)
			return false, nil
		}
		// After compaction the old offset is gone; data was already dead.
	}
	newEnd := p.realFreeEnd() - len(data)
	copy(p.Data[newEnd:], data)
	p.setFreeEnd(newEnd)
	p.setSlot(slot, newEnd, len(data))
	return true, nil
}

// compact repacks live cells against the end of the page.
func (p *Page) compact() {
	type live struct {
		slot int
		data []byte
	}
	var cells []live
	for i := 0; i < p.numSlots(); i++ {
		off, l := p.slot(i)
		if off != deadOffset {
			buf := make([]byte, l)
			copy(buf, p.Data[off:off+l])
			cells = append(cells, live{i, buf})
		}
	}
	end := PageSize
	for _, c := range cells {
		end -= len(c.data)
		copy(p.Data[end:], c.data)
		p.setSlot(c.slot, end, len(c.data))
	}
	p.setFreeEnd(end)
}

// LiveCells calls fn for every live slot in slot order.
func (p *Page) LiveCells(fn func(slot int, data []byte) error) error {
	for i := 0; i < p.numSlots(); i++ {
		off, l := p.slot(i)
		if off == deadOffset {
			continue
		}
		if err := fn(i, p.Data[off:off+l]); err != nil {
			return err
		}
	}
	return nil
}
