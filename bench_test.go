// Benchmarks regenerating every experiment of DESIGN.md's per-experiment
// index (E1–E13). Each benchmark corresponds to a figure or a performance
// claim of the paper; cmd/xnfbench prints the same experiments as
// paper-style tables with derived ratios.
package sqlxnf

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sqlxnf/internal/engine"
	"sqlxnf/internal/lw90"
	"sqlxnf/internal/oo1"
	"sqlxnf/internal/parser"
	"sqlxnf/internal/qgm"
	"sqlxnf/internal/rewrite"
	"sqlxnf/internal/workload"
)

// companyDB loads a company database for CO benches.
func companyDB(b *testing.B, cfg workload.CompanyConfig) *DB {
	b.Helper()
	db := Open()
	if _, err := workload.LoadCompany(db.Session(), cfg); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchCompanyConfig() workload.CompanyConfig {
	return workload.CompanyConfig{Departments: 30, EmpsPerDept: 10, ProjsPerDept: 3, SkillsPerEmp: 1, Seed: 1}
}

// E1 — Fig. 1: constructing the 'company organizational unit' CO with
// reachability and shared skills.
func BenchmarkE1_Fig1Construct(b *testing.B) {
	cfg := benchCompanyConfig()
	db := companyDB(b, cfg)
	q := workload.CompanyCOQuery(cfg, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co, err := db.QueryCO(q)
		if err != nil {
			b.Fatal(err)
		}
		if co.Size() == 0 {
			b.Fatal("empty CO")
		}
	}
}

// E2 — Fig. 2: the same CO from the implicit-FK representation (CDB1) and
// the explicit link-table representation (CDB2).
func BenchmarkE2_RepIndependence(b *testing.B) {
	for _, arm := range []struct {
		name string
		link bool
	}{{"fk", false}, {"link_table", true}} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := benchCompanyConfig()
			cfg.LinkTable = arm.link
			db := companyDB(b, cfg)
			q := workload.CompanyCOQuery(cfg, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryCO(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// companyViews installs ALL_DEPS / ALL_DEPS_ORG / EXT_ALL_DEPS_ORG.
func companyViews(b *testing.B, db *DB) {
	b.Helper()
	db.MustExec(`CREATE TABLE EMPPROJ (epeno INT, eppno INT, percentage FLOAT)`)
	// Wire some memberships: employee k works on project k%numProjects.
	s := db.Session()
	r := db.MustExec("SELECT eno FROM EMP")
	p := db.MustExec("SELECT pno FROM PROJ")
	for i, row := range r.Rows {
		proj := p.Rows[i%len(p.Rows)][0]
		s.MustExec(fmt.Sprintf("INSERT INTO EMPPROJ VALUES (%v, %v, %d)", row[0], proj, 10+i%90))
	}
	db.MustExec(`CREATE VIEW ALL_DEPS AS
	OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ,
	 employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
	 ownership AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno)
	TAKE *`)
	db.MustExec(`CREATE VIEW ALL_DEPS_ORG AS
	OUT OF ALL_DEPS,
	 membership AS (RELATE Xproj, Xemp
		WITH ATTRIBUTES ep.percentage
		USING EMPPROJ ep
		WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno)
	TAKE *`)
	db.MustExec(`CREATE VIEW EXT_ALL_DEPS_ORG AS
	OUT OF ALL_DEPS_ORG,
	 projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno)
	TAKE *`)
}

// E3 — Fig. 3: evaluating a view over a view with an attributed
// relationship.
func BenchmarkE3_ViewsOverViews(b *testing.B) {
	db := companyDB(b, benchCompanyConfig())
	companyViews(b, db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryCO("OUT OF ALL_DEPS_ORG TAKE *"); err != nil {
			b.Fatal(err)
		}
	}
}

// E4 — §3.3: node restriction and edge restriction.
func BenchmarkE4_Restriction(b *testing.B) {
	db := companyDB(b, benchCompanyConfig())
	companyViews(b, db)
	b.Run("node", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryCO("OUT OF ALL_DEPS WHERE Xemp e SUCH THAT e.sal < 2000 TAKE *"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryCO(`OUT OF ALL_DEPS
				WHERE employment (d, e) SUCH THAT e.sal < d.budget/100
				TAKE Xdept(*), Xemp(*), employment`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E5 — Fig. 4/5: recursive CO evaluation with restriction and projection.
func BenchmarkE5_RecursiveCO(b *testing.B) {
	db := companyDB(b, benchCompanyConfig())
	companyViews(b, db)
	q := `OUT OF EXT_ALL_DEPS_ORG
		WHERE Xdept SUCH THAT loc = 'NY'
		TAKE Xdept(*), employment, Xemp(*), projmanagement, membership(*), Xproj(*)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryCO(q); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 ablation — semi-naive vs naive reachability fixpoint on the recursive
// CO (DESIGN.md §5).
func BenchmarkE5_FixpointAblation(b *testing.B) {
	for _, arm := range []struct {
		name string
		opts []Option
	}{{"semi_naive", nil}, {"naive", []Option{WithNaiveFixpoint()}}} {
		b.Run(arm.name, func(b *testing.B) {
			db := Open(arm.opts...)
			if _, err := workload.LoadCompany(db.Session(), benchCompanyConfig()); err != nil {
				b.Fatal(err)
			}
			companyViews(b, db)
			q := "OUT OF EXT_ALL_DEPS_ORG TAKE *"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryCO(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E5 ablation, deep-chain arm: a 3000-tuple successor chain gives the
// reachability fixpoint a 3000-round diameter — the regime where semi-naive
// frontier propagation beats re-scanning every connection each round.
func BenchmarkE5_FixpointDeepChain(b *testing.B) {
	for _, arm := range []struct {
		name string
		opts []Option
	}{{"semi_naive", nil}, {"naive", []Option{WithNaiveFixpoint()}}} {
		b.Run(arm.name, func(b *testing.B) {
			db := Open(arm.opts...)
			s := db.Session()
			db.MustExec("CREATE TABLE CHAIN (id INT PRIMARY KEY, next INT)")
			const n = 3000
			for i := 0; i < n; i += 200 {
				var sb strings.Builder
				sb.WriteString("INSERT INTO CHAIN VALUES ")
				for j := i; j < i+200 && j < n; j++ {
					if j > i {
						sb.WriteString(", ")
					}
					fmt.Fprintf(&sb, "(%d, %d)", j, j+1)
				}
				s.MustExec(sb.String())
			}
			// Anchor at the head; succ is cyclic at the schema level, so the
			// evaluator must run the instance-level fixpoint for reachability.
			q := `OUT OF
				Xhead AS (SELECT * FROM CHAIN WHERE id = 0),
				Xnode AS CHAIN,
				first AS (RELATE Xhead, Xnode WHERE Xhead.id = Xnode.id),
				succ AS (RELATE Xnode AS cur, Xnode AS nxt WHERE cur.next = nxt.id)
			TAKE *`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				co, err := db.QueryCO(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(co.Node("Xnode").Rows) != n {
					b.Fatalf("chain reachability broken: %d", len(co.Node("Xnode").Rows))
				}
			}
		})
	}
}

// E6 — §3.5: path expressions in restrictions (COUNT and qualified EXISTS).
func BenchmarkE6_PathExpr(b *testing.B) {
	db := companyDB(b, benchCompanyConfig())
	companyViews(b, db)
	b.Run("count", func(b *testing.B) {
		q := `OUT OF EXT_ALL_DEPS_ORG
			WHERE Xdept d SUCH THAT COUNT(d->employment->projmanagement) >= 1
			TAKE *`
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryCO(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("qualified_exists", func(b *testing.B) {
		q := `OUT OF EXT_ALL_DEPS_ORG
			WHERE Xdept d SUCH THAT
			 EXISTS d->employment->(Xemp e WHERE e.sal > 2000)->projmanagement->Xproj
			TAKE *`
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryCO(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E7 — Fig. 6: the four closure classes.
func BenchmarkE7_Closure(b *testing.B) {
	db := companyDB(b, benchCompanyConfig())
	companyViews(b, db)
	b.Run("nf_to_nf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("SELECT COUNT(*) FROM EMP WHERE sal > 2000"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nf_to_xnf", func(b *testing.B) {
		q := workload.CompanyCOQuery(benchCompanyConfig(), 3)
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryCO(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("xnf_to_xnf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryCO("OUT OF ALL_DEPS WHERE Xemp e SUCH THAT e.sal > 2000 TAKE *"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("xnf_to_nf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(`SELECT COUNT(*) FROM "ALL_DEPS.Xemp"`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E8 — §3.7/§4.2: cursor navigation and udi operations over the cache.
func BenchmarkE8_CursorOps(b *testing.B) {
	db := companyDB(b, benchCompanyConfig())
	companyViews(b, db)
	c, err := db.QueryCache("OUT OF ALL_DEPS TAKE *")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("independent_scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur, _ := c.Open("Xemp")
			n := 0
			for cur.Next() {
				n++
			}
		}
	})
	b.Run("dependent_navigation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur, _ := c.Open("Xdept")
			for cur.Next() {
				dep, _ := cur.OpenDependent("employment")
				for dep.Next() {
				}
			}
		}
	})
	b.Run("update_writeback", func(b *testing.B) {
		cur, _ := c.Open("Xemp")
		cur.Next()
		t := cur.Tuple()
		for i := 0; i < b.N; i++ {
			if err := c.Update(t, "sal", NewFloat(float64(1000+i%100))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E9 — Fig. 8: the compilation pipeline, stage by stage.
func BenchmarkE9_CompilePipeline(b *testing.B) {
	db := companyDB(b, benchCompanyConfig())
	sql := `SELECT d.dname, e.ename FROM DEPT d, EMP e WHERE d.dno = e.edno AND e.sal > 2000`
	cat := db.Engine().Catalog()
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parser.ParseOne(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("semantic_qgm", func(b *testing.B) {
		st, _ := parser.ParseOne(sql)
		sel := st.(*parser.SelectStmt)
		for i := 0; i < b.N; i++ {
			if _, err := qgm.NewBuilder(cat, nil).BuildSelect(sel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rewrite", func(b *testing.B) {
		st, _ := parser.ParseOne(sql)
		sel := st.(*parser.SelectStmt)
		for i := 0; i < b.N; i++ {
			box, _ := qgm.NewBuilder(cat, nil).BuildSelect(sel)
			rewrite.Rewrite(box, rewrite.DefaultOptions())
		}
	})
	b.Run("end_to_end", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E10 — the headline claim: cache navigation vs SQL-per-step on the Cattell
// OO1 workload.
func oo1Setup(b *testing.B, parts int) (*DB, *Cache) {
	b.Helper()
	db := Open()
	s := db.Session()
	if err := oo1.Load(s, oo1.Config{Parts: parts, Seed: 42}); err != nil {
		b.Fatal(err)
	}
	c, err := oo1.LoadCache(s)
	if err != nil {
		b.Fatal(err)
	}
	return db, c
}

func BenchmarkE10_OO1_TraverseCache(b *testing.B) {
	_, c := oo1Setup(b, 2000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := 1 + rng.Intn(2000)
		if _, err := oo1.TraverseCache(c, start, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_OO1_TraverseSQL(b *testing.B) {
	db, _ := oo1Setup(b, 2000)
	s := db.Session()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := 1 + rng.Intn(2000)
		if _, err := oo1.TraverseSQL(s, start, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_OO1_LookupCache(b *testing.B) {
	_, c := oo1Setup(b, 2000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oo1.LookupCache(c, rng, 2000, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_OO1_LookupSQL(b *testing.B) {
	db, _ := oo1Setup(b, 2000)
	s := db.Session()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oo1.LookupSQL(s, rng, 2000, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10_OO1_InsertSQL(b *testing.B) {
	db, _ := oo1Setup(b, 2000)
	s := db.Session()
	rng := rand.New(rand.NewSource(3))
	next := 1000000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := oo1.InsertSQL(s, rng, next, 100, 2000); err != nil {
			b.Fatal(err)
		}
		next += 100
	}
}

// E11 — working-set extraction: one set-oriented XNF query vs per-object
// instantiation (LW90) at high selectivity.
func designSetup(b *testing.B) *DB {
	b.Helper()
	db := Open()
	cfg := workload.DesignConfig{Designs: 1000, CompsPerDesign: 6, SubsPerComp: 4, Seed: 7}
	if _, err := workload.LoadDesign(db.Session(), cfg); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkE11_Extraction_XNF(b *testing.B) {
	db := designSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := fmt.Sprintf("model-%d", i%250)
		co, err := db.QueryCO(workload.WorkingSetQuery(model, 1))
		if err != nil {
			b.Fatal(err)
		}
		if co.Size() == 0 {
			b.Fatal("empty working set")
		}
	}
}

func BenchmarkE11_Extraction_LW90(b *testing.B) {
	db := designSetup(b)
	s := db.Session()
	sub := &lw90.ObjectType{Name: "Sub", Table: "SUBCOMP", KeyCol: "sid"}
	comp := &lw90.ObjectType{Name: "Component", Table: "COMPONENTS", KeyCol: "cid",
		Children: []lw90.ChildSpec{{Name: "subs", Type: sub, FKCol: "scid"}}}
	design := &lw90.ObjectType{Name: "Design", Table: "DESIGNS", KeyCol: "did",
		Children: []lw90.ChildSpec{{Name: "components", Type: comp, FKCol: "cdid"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := fmt.Sprintf("model-%d", i%250)
		objs, _, err := lw90.Instantiate(s, design, fmt.Sprintf("model = '%s' AND version = 1", model))
		if err != nil {
			b.Fatal(err)
		}
		if lw90.Count(objs) == 0 {
			b.Fatal("empty instantiation")
		}
	}
}

// E12 — §4: composite-object clustering vs per-table layout, measured in
// cold-buffer page reads per working-set extraction.
func BenchmarkE12_Clustering(b *testing.B) {
	for _, arm := range []struct {
		name      string
		clustered bool
	}{{"clustered", true}, {"per_table", false}} {
		b.Run(arm.name, func(b *testing.B) {
			db := Open(WithBufferPool(16)) // small pool → real I/O
			cfg := workload.CompanyConfig{Departments: 100, EmpsPerDept: 20,
				ProjsPerDept: 5, SkillsPerEmp: 0, Seed: 3, Clustered: arm.clustered, Scatter: true}
			if _, err := workload.LoadCompany(db.Session(), cfg); err != nil {
				b.Fatal(err)
			}
			eng := db.Engine()
			b.ResetTimer()
			var reads int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := eng.BufferPool().DropAll(); err != nil {
					b.Fatal(err)
				}
				eng.Disk().ResetStats()
				b.StartTimer()
				if _, err := db.QueryCO(workload.CompanyCOQuery(cfg, 1+i%100)); err != nil {
					b.Fatal(err)
				}
				reads += eng.Disk().Stats().Reads
			}
			b.ReportMetric(float64(reads)/float64(b.N), "page-reads/op")
		})
	}
}

// E13 — §4.3: common subexpression sharing across the generated node/edge
// queries, against the recompute ablation.
func BenchmarkE13_CSE(b *testing.B) {
	for _, arm := range []struct {
		name string
		opts []Option
	}{{"shared", nil}, {"recomputed", []Option{WithoutCommonSubexpressions()}}} {
		b.Run(arm.name, func(b *testing.B) {
			db := Open(arm.opts...)
			cfg := benchCompanyConfig()
			if _, err := workload.LoadCompany(db.Session(), cfg); err != nil {
				b.Fatal(err)
			}
			q := workload.CompanyCOQuery(cfg, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryCO(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var _ = engine.DefaultOptions // keep the import anchored for pipeline benches
