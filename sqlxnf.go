// Package sqlxnf is a from-scratch reproduction of SQL/XNF — "Processing
// Composite Objects as Abstractions over Relational Data" (Mitschang,
// Pirahesh, Pistor, Lindsay, Südkamp; ICDE 1993).
//
// It provides a complete embedded relational engine (storage, B+tree
// indexes, WAL, locking, SQL with views and a cost-based optimizer) plus
// the paper's composite-object extension: the OUT OF ... TAKE constructor
// with RELATE relationships, reachability semantics, XNF views (including
// views over views and recursive composite objects), node/edge restrictions,
// structural projection, path expressions, CO-level DELETE, and the
// pointer-linked application cache with cursors and write-through
// update/connect/disconnect operations.
//
// Quick start:
//
//	db := sqlxnf.Open()
//	db.MustExec(`CREATE TABLE DEPT (dno INT PRIMARY KEY, dname VARCHAR)`)
//	db.MustExec(`INSERT INTO DEPT VALUES (1, 'toys')`)
//	co, _ := db.QueryCO(`OUT OF Xdept AS DEPT TAKE *`)
//	cache, _ := db.OpenCache(co)
package sqlxnf

import (
	"context"
	"fmt"
	"time"

	"sqlxnf/internal/cache"
	"sqlxnf/internal/engine"
	"sqlxnf/internal/faultinj"
	"sqlxnf/internal/optimizer"
	"sqlxnf/internal/rewrite"
	"sqlxnf/internal/types"
	"sqlxnf/internal/wal"
	"sqlxnf/internal/xnf"
)

// Re-exported types: the public API surfaces the engine session, results,
// composite objects and the cache directly.
type (
	// Result is the outcome of one statement: rows for queries, a CO for
	// XNF TAKE queries, affected counts for DML.
	Result = engine.Result
	// Session is one connection with transaction state.
	Session = engine.Session
	// CO is a materialized composite object.
	CO = xnf.CO
	// NodeInstance is one component table of a CO.
	NodeInstance = xnf.NodeInstance
	// EdgeInstance is one relationship of a CO.
	EdgeInstance = xnf.EdgeInstance
	// Cache is the pointer-linked navigation cache over a CO.
	Cache = cache.Cache
	// Cursor iterates cached component tuples.
	Cursor = cache.Cursor
	// Tuple is one cached tuple.
	Tuple = cache.Tuple
	// Row is one tuple of values.
	Row = types.Row
	// Value is one scalar SQL value.
	Value = types.Value
	// Schema describes a rowset.
	Schema = types.Schema
)

// ErrWriteConflict reports a write-write conflict under snapshot isolation:
// the transaction tried to change a row replaced or removed by a
// transaction that committed after its snapshot was taken. The transaction
// has been rolled back; retrying it reads fresh state. Test with errors.Is.
var ErrWriteConflict = engine.ErrWriteConflict

// ErrClosed is returned by statements issued after DB.Close began: the
// engine rejected them at the statement gate. Test with errors.Is.
var ErrClosed = engine.ErrClosed

// EngineStats aggregates every observable engine counter (plan cache, CO
// cache, WAL, buffer pool, MVCC); see DB.Stats and the wire stats command.
type EngineStats = engine.Stats

// Value constructors, re-exported for application code.
var (
	// NewInt builds an integer value.
	NewInt = types.NewInt
	// NewFloat builds a floating-point value.
	NewFloat = types.NewFloat
	// NewString builds a character value.
	NewString = types.NewString
	// NewBool builds a boolean value.
	NewBool = types.NewBool
	// Null builds the SQL NULL.
	Null = types.Null
)

// Option configures Open.
type Option func(*engine.Options)

// WithBufferPool sizes the buffer pool in pages.
func WithBufferPool(pages int) Option {
	return func(o *engine.Options) { o.BufferPoolPages = pages }
}

// WithoutCommonSubexpressions disables node-materialization sharing across
// XNF edge queries (the E13 ablation).
func WithoutCommonSubexpressions() Option {
	return func(o *engine.Options) { o.XNF.NoSharedSubexpressions = true }
}

// WithNaiveFixpoint disables semi-naive reachability (ablation).
func WithNaiveFixpoint() Option {
	return func(o *engine.Options) { o.XNF.NaiveFixpoint = true }
}

// WithoutIndexes disables index access paths in the optimizer (ablation).
func WithoutIndexes() Option {
	return func(o *engine.Options) { o.Optimizer.NoIndexes = true }
}

// WithoutRewrite disables the query-rewrite phase (ablation).
func WithoutRewrite() Option {
	return func(o *engine.Options) {
		o.Rewrite = rewrite.Options{NoMergeSelects: true, NoFoldConstants: true}
	}
}

// WithoutHashJoins forces nested-loops joins (ablation).
func WithoutHashJoins() Option {
	return func(o *engine.Options) { o.Optimizer.NoHashJoins = true }
}

// WithoutIndexJoins disables index-nested-loop joins (ablation).
func WithoutIndexJoins() Option {
	return func(o *engine.Options) { o.Optimizer.NoIndexJoins = true }
}

// WithoutPlanCache disables the prepared-plan cache, forcing a full parse →
// build → rewrite → optimize pipeline on every statement (the cold-compile
// ablation of the e15 experiment).
func WithoutPlanCache() Option {
	return func(o *engine.Options) { o.PlanCacheSize = -1 }
}

// WithPlanCacheSize bounds the prepared-plan cache (entries).
func WithPlanCacheSize(entries int) Option {
	return func(o *engine.Options) { o.PlanCacheSize = entries }
}

// WithoutCOCache disables the composite-object materialization cache:
// every XNF TAKE and every FROM "VIEW.NODE" reference re-materializes the
// composite object (the cold arm of the e18 experiment, and the reference
// engine of the XNF differential tests).
func WithoutCOCache() Option {
	return func(o *engine.Options) { o.COCacheBytes = -1 }
}

// WithCOCacheBudget bounds the composite-object cache's resident bytes.
func WithCOCacheBudget(bytes int64) Option {
	return func(o *engine.Options) { o.COCacheBytes = bytes }
}

// WithStatementTimeout bounds every statement's execution; an expired
// statement aborts at its next batch boundary with context.DeadlineExceeded
// and its transaction rolls back. Sessions may override per-session with
// Session.SetStatementTimeout.
func WithStatementTimeout(d time.Duration) Option {
	return func(o *engine.Options) { o.StatementTimeout = d }
}

// WithLockTimeout bounds every table-lock wait; expiry surfaces as
// lock.ErrLockTimeout and aborts the waiting statement's transaction.
func WithLockTimeout(d time.Duration) Option {
	return func(o *engine.Options) { o.LockTimeout = d }
}

// WithReadLocks restores the pre-MVCC read path: readers take shared table
// locks and block behind writers instead of reading their snapshot. The
// locking baseline arm of the e19 experiment.
func WithReadLocks() Option {
	return func(o *engine.Options) { o.ReadLocks = true }
}

// WithVacuumDeadRows sets the auto-vacuum trigger: a commit that brings the
// count of unsettled row versions past n sweeps inline. Negative disables
// auto-vacuum (Engine.Vacuum still works); 0 keeps the default.
func WithVacuumDeadRows(n int) Option {
	return func(o *engine.Options) { o.VacuumDeadRows = n }
}

// WithSlowQueryThreshold arms per-statement phase tracing and the
// slow-query log: any statement taking at least d is logged with its text,
// binds-redacted cache key, phase spans (parse, optimize, bind, execute,
// WAL append/fsync, commit), and plan. Tracing off (the default) costs the
// prepared-hit fast path nothing.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(o *engine.Options) { o.SlowQueryThreshold = d }
}

// WithSlowQueryLogf routes slow-query records to logf instead of the
// standard logger.
func WithSlowQueryLogf(logf func(format string, args ...any)) Option {
	return func(o *engine.Options) { o.SlowQueryLogf = logf }
}

// SyncPolicy governs when a durable database forces its WAL to disk
// (internal/wal re-exported).
type SyncPolicy = wal.SyncPolicy

// The durability/throughput trade-off points for WithSyncPolicy.
const (
	// SyncGroupCommit (the default) fsyncs once per batch of concurrent
	// committers: full durability for every acknowledged commit, one disk
	// force shared by all commits that arrive while a force is in flight.
	SyncGroupCommit SyncPolicy = wal.SyncGroupCommit
	// SyncAlways forces the log once per commit.
	SyncAlways SyncPolicy = wal.SyncAlways
	// SyncNone never forces; a crash may lose recently acknowledged
	// commits, but the log stays torn-tail-consistent.
	SyncNone SyncPolicy = wal.SyncNone
)

// WithDataDir makes the database durable: the WAL appends to segment files
// under dir, and OpenDir recovers state from them. Only meaningful with
// OpenDir (Open ignores it and stays in-memory).
func WithDataDir(dir string) Option {
	return func(o *engine.Options) { o.DataDir = dir }
}

// WithSyncPolicy selects when a durable database forces its WAL to disk.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *engine.Options) { o.Sync = p }
}

// WithCheckpointBytes sets the auto-checkpoint threshold: once that many log
// bytes accumulate past the last checkpoint, the next commit triggers one.
// Negative disables auto-checkpointing (CHECKPOINT still works).
func WithCheckpointBytes(n int64) Option {
	return func(o *engine.Options) { o.CheckpointBytes = n }
}

// WithDrainTimeout bounds how long Close waits for cancelled in-flight
// statements to roll back before sealing the WAL (0 keeps the engine
// default, 5s).
func WithDrainTimeout(d time.Duration) Option {
	return func(o *engine.Options) { o.DrainTimeout = d }
}

// FaultInjector is the engine's opt-in fault-injection harness
// (internal/faultinj re-exported for chaos tests and debugging tools).
type FaultInjector = faultinj.Injector

// Fault describes one armed failure at a probe point.
type Fault = faultinj.Fault

// FaultPoint names a probe point for Fault.Point.
type FaultPoint = faultinj.Point

// The engine's probe points, re-exported so external chaos tests can name
// them without reaching into internal/faultinj.
const (
	FaultDiskRead    FaultPoint = faultinj.DiskRead
	FaultDiskWrite   FaultPoint = faultinj.DiskWrite
	FaultBufferFetch FaultPoint = faultinj.BufferFetch
	FaultWALAppend   FaultPoint = faultinj.WALAppend
	FaultComatMat    FaultPoint = faultinj.ComatMat
	FaultWALFsync    FaultPoint = faultinj.WALFsync
	FaultWALOpen     FaultPoint = faultinj.WALOpen
	FaultNetAccept   FaultPoint = faultinj.NetAccept
	FaultNetRead     FaultPoint = faultinj.NetRead
)

// NewFaultInjector builds an empty injector for WithFaultInjector.
func NewFaultInjector() *FaultInjector { return faultinj.New() }

// WithFaultInjector arms the engine's fault-injection probe points (disk
// read/write, buffer-pool fetch, WAL append, CO materialization). Nil (the
// default) leaves the probes inert.
func WithFaultInjector(in *FaultInjector) Option {
	return func(o *engine.Options) { o.FaultInjector = in }
}

var _ = optimizer.DefaultOptions // anchor for godoc cross-reference

// DB is one embedded database instance with a default session.
type DB struct {
	eng *engine.Engine
	def *engine.Session
}

// Open creates an empty in-memory database.
func Open(opts ...Option) *DB {
	o := engine.DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	o.DataDir = "" // Open is in-memory by contract; durability goes via OpenDir
	eng := engine.New(o)
	return &DB{eng: eng, def: eng.Session()}
}

// OpenDir opens a durable database rooted at dir, creating it if empty and
// otherwise recovering from its write-ahead log (any torn tail left by a
// crash is truncated in place). Close the returned DB to release the log.
func OpenDir(dir string, opts ...Option) (*DB, error) {
	o := engine.DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	o.DataDir = dir
	eng, err := engine.Open(o)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng, def: eng.Session()}, nil
}

// Close shuts the database down with a drain: new statements fail with
// ErrClosed, in-flight statements are cancelled and given the drain timeout
// (WithDrainTimeout) to roll back, then — for durable instances that
// drained cleanly — a final checkpoint folds the log away before it seals,
// so the next OpenDir replays zero records. Idempotent.
func (db *DB) Close() error { return db.eng.Close() }

// Engine exposes the underlying engine (benchmarks read its I/O counters).
func (db *DB) Engine() *engine.Engine { return db.eng }

// Stats snapshots the engine's observable counters (plan cache, CO cache,
// WAL, buffer pool, MVCC) — the payload the wire server's stats command
// serves.
func (db *DB) Stats() EngineStats { return db.eng.Stats() }

// Session opens an additional session (one per goroutine).
func (db *DB) Session() *Session { return db.eng.Session() }

// Exec runs a SQL/XNF script on the default session and returns the last
// statement's result.
func (db *DB) Exec(sql string) (*Result, error) { return db.def.Exec(sql) }

// ExecContext runs a script under a lifecycle context: cancellation or
// deadline expiry aborts the running statement, rolls its transaction back,
// and surfaces the context's error.
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return db.def.ExecContext(ctx, sql)
}

// MustExec runs a script, panicking on error (examples and tests).
func (db *DB) MustExec(sql string) *Result { return db.def.MustExec(sql) }

// Query runs a single query statement.
func (db *DB) Query(sql string) (*Result, error) { return db.def.Query(sql) }

// QueryCO runs an XNF TAKE query and returns the materialized composite
// object.
func (db *DB) QueryCO(sql string) (*CO, error) {
	r, err := db.def.Exec(sql)
	if err != nil {
		return nil, err
	}
	if r.CO == nil {
		return nil, fmt.Errorf("sqlxnf: statement did not produce a composite object")
	}
	return r.CO, nil
}

// OpenCache loads a composite object into the pointer-linked navigation
// cache bound to the default session (write-through operations join that
// session's transactions).
func (db *DB) OpenCache(co *CO) (*Cache, error) { return cache.Load(db.def, co) }

// QueryCache combines QueryCO and OpenCache.
func (db *DB) QueryCache(sql string) (*Cache, error) {
	co, err := db.QueryCO(sql)
	if err != nil {
		return nil, err
	}
	return db.OpenCache(co)
}
