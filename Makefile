GO ?= go

.PHONY: build test bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Smoke-run the executor micro-benchmarks (one iteration each): catches
# bench-rot without burning CI minutes. See EXECUTOR.md for real runs.
bench:
	$(GO) test -run '^$$' -bench BenchmarkExec -benchtime 1x ./internal/exec/

clean:
	$(GO) clean ./...
