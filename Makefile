GO ?= go

.PHONY: build test vet bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Smoke-run the executor micro-benchmarks (one iteration each): catches
# bench-rot without burning CI minutes. See EXECUTOR.md for real runs.
bench:
	$(GO) test -run '^$$' -bench BenchmarkExec -benchtime 1x ./internal/exec/
	$(GO) test -run '^$$' -bench BenchmarkExecRepeated -benchtime 1x ./internal/engine/

clean:
	$(GO) clean ./...
