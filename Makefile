GO ?= go

.PHONY: build test fuzz vet bench chaos crash serve-test metrics-test clean

build:
	$(GO) build ./...

# The engine and comat packages carry fuzz targets (FuzzExtractLiterals,
# FuzzDepKey); their seed corpora run as plain tests here. `make fuzz`
# explores beyond the seeds.
test:
	$(GO) test ./...

fuzz:
	$(GO) test -fuzz FuzzExtractLiterals -fuzztime 30s ./internal/engine/
	$(GO) test -fuzz FuzzDepKey -fuzztime 15s ./internal/comat/
	$(GO) test -fuzz FuzzWALReplay -fuzztime 30s ./internal/wal/

vet:
	$(GO) vet ./...

# Fault-injection chaos suite: hundreds of injected faults (disk, buffer
# pool, WAL append, CO materialization) against a fault-free twin engine,
# under the race detector. See EXECUTOR.md "Cancellation, timeouts & fault
# injection".
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/engine/
	$(GO) test -race -count=1 ./internal/faultinj/

# Crash-injection harness: every durable commit point of a mixed workload is
# crashed (boundary images plus torn-tail cuts of the newest segment, and
# injected fsync/open failures); each image is recovered and differentially
# verified against an in-memory twin. See EXECUTOR.md "Durability & crash
# recovery".
crash:
	$(GO) test -race -count=1 -run 'TestCrash' -v ./internal/engine/

# Network service layer suite under the race detector: wire protocol,
# admission control and shedding, server-side conflict retries, connection
# chaos (injected net faults), graceful drain, and the engine's
# clean-shutdown contract. See EXECUTOR.md "Network service layer".
serve-test:
	$(GO) test -race -count=1 ./internal/wire/
	$(GO) test -race -count=1 -run 'TestClose|TestCleanShutdown' ./internal/engine/

# Observability suite under the race detector: the metrics core (atomic
# counters/gauges/histograms, registry, Prometheus exposition, traces),
# EXPLAIN ANALYZE actual-vs-collected parity, statement classification and
# the slow-query log, WAL latency histograms, wire counter exposition, and
# the tracing-off prepared-hit alloc guard. See EXECUTOR.md "Observability".
metrics-test:
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) test -race -count=1 -run 'TestExplainAnalyze|TestSlowQuery|TestTraceSpans|TestStatementClass|TestWriteConflictCounter|TestVacuumCounters|TestWALLatency|TestMetricsExposition|TestPreparedHit' ./internal/engine/
	$(GO) test -race -count=1 -run 'TestWireMetrics|TestCountersRaceFree' ./internal/wire/

# Smoke-run the executor micro-benchmarks (one iteration each): catches
# bench-rot without burning CI minutes. See EXECUTOR.md for real runs.
bench:
	$(GO) test -run '^$$' -bench BenchmarkExec -benchtime 1x ./internal/exec/
	$(GO) test -run '^$$' -bench BenchmarkExecRepeated -benchtime 1x ./internal/engine/
	$(GO) run ./cmd/xnfbench -exp e16
	$(GO) run ./cmd/xnfbench -exp e17 -json
	$(GO) run ./cmd/xnfbench -exp e18 -json
	$(GO) run ./cmd/xnfbench -exp e19 -json
	$(GO) run ./cmd/xnfbench -exp e23 -json
	$(GO) run ./cmd/xnfload -conns 1,8 -duration 200ms -rows 2000 -json

clean:
	$(GO) clean ./...
