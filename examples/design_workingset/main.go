// Design working sets: the introduction's engineering scenario. A design
// repository holds many versioned designs; an application extracts the
// working set of one (model, version) as a composite object, loads it into
// the cache close to the tool, navigates and edits it, and the changes
// propagate back to the shared relational database.
package main

import (
	"fmt"
	"log"

	"sqlxnf"
	"sqlxnf/internal/workload"
)

func main() {
	db := sqlxnf.Open()
	s := db.Session()

	cfg := workload.DesignConfig{Designs: 400, CompsPerDesign: 6, SubsPerComp: 3, Seed: 21}
	total, err := workload.LoadDesign(s, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design repository: %d tuples\n", total)

	// Set-oriented extraction of one working set (1 design out of 400).
	co, err := db.QueryCO(workload.WorkingSetQuery("model-25", 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("working set: %s — %d of %d tuples (%.2f%%)\n",
		co, co.Size(), total, 100*float64(co.Size())/float64(total))

	// Load into the cache and browse: design → components → subcomponents.
	c, err := db.OpenCache(co)
	if err != nil {
		log.Fatal(err)
	}
	dcur, _ := c.Open("Xdesign")
	for dcur.Next() {
		d := dcur.Tuple()
		fmt.Printf("design %v (%v v%v)\n", d.MustValue("did"), d.MustValue("model"), d.MustValue("version"))
		comps, _ := dcur.OpenDependent("hascomp")
		for comps.Next() {
			cmp := comps.Tuple()
			subs, _ := comps.OpenDependent("hassub")
			n := 0
			for subs.Next() {
				n++
			}
			fmt.Printf("  component %v (%v, %.1f kg) with %d subcomponents\n",
				cmp.MustValue("cid"), cmp.MustValue("kind"), cmp.MustValue("weight").Float(), n)
		}
	}

	// Edit the working set: lighten every component by 5%, write back.
	comps, _ := c.Open("Xcomp")
	for comps.Next() {
		w := comps.Tuple().MustValue("weight").Float()
		if err := c.Update(comps.Tuple(), "weight", sqlxnf.NewFloat(w*0.95)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nupdated %d components through the cache\n", len(co.Node("Xcomp").Rows))

	// The shared database sees the propagated changes.
	r, _ := db.Query(`SELECT MIN(c.weight), MAX(c.weight)
		FROM COMPONENTS c, DESIGNS d
		WHERE c.cdid = d.did AND d.model = 'model-25' AND d.version = 2`)
	fmt.Printf("component weights in the base tables now span %.2f .. %.2f\n",
		r.Rows[0][0].Float(), r.Rows[0][1].Float())
}
