// Quickstart: create a small relational database, define a composite object
// over it with the XNF constructor, and browse it both set-oriented (the CO
// result) and navigationally (the cache API).
package main

import (
	"fmt"
	"log"

	"sqlxnf"
)

func main() {
	db := sqlxnf.Open()

	// Plain SQL: the shared relational database (Fig. 7 — SQL applications
	// keep working unchanged).
	db.MustExec(`
	CREATE TABLE DEPT (dno INT NOT NULL PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget FLOAT);
	CREATE TABLE EMP  (eno INT NOT NULL PRIMARY KEY, ename VARCHAR, sal FLOAT, edno INT);
	INSERT INTO DEPT VALUES (1, 'design', 'NY', 900000), (2, 'assembly', 'SF', 400000);
	INSERT INTO EMP VALUES
	 (10, 'ann', 2100, 1), (11, 'bob', 1800, 1), (12, 'cid', 1500, 2), (13, 'dee', 900, NULL);
	`)

	r, err := db.Query("SELECT dname, budget FROM DEPT ORDER BY budget DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL view of the data:")
	for _, row := range r.Rows {
		fmt.Printf("  %-10s %v\n", row[0], row[1])
	}

	// The XNF composite-object constructor (paper §3.1): departments with
	// their employees. dee has no department and is excluded by the
	// reachability constraint.
	co, err := db.QueryCO(`OUT OF
		Xdept AS DEPT,
		Xemp  AS EMP,
		employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)
	TAKE *`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nComposite object:", co)

	// Navigate through the cache (paper §3.7/§4.2): independent cursor over
	// the root, dependent cursors across the relationship.
	c, err := db.OpenCache(co)
	if err != nil {
		log.Fatal(err)
	}
	depts, _ := c.Open("Xdept")
	for depts.Next() {
		d := depts.Tuple()
		fmt.Printf("\n%s (%s)\n", d.MustValue("dname"), d.MustValue("loc"))
		emps, _ := depts.OpenDependent("employment")
		for emps.Next() {
			e := emps.Tuple()
			fmt.Printf("  - %s earns %v\n", e.MustValue("ename"), e.MustValue("sal"))
		}
	}

	// Write through the cache: a raise for ann propagates to EMP.
	emps, _ := c.Open("Xemp")
	for emps.Next() {
		if emps.Tuple().MustValue("ename").Str() == "ann" {
			if err := c.Update(emps.Tuple(), "sal", sqlxnf.NewFloat(2500)); err != nil {
				log.Fatal(err)
			}
		}
	}
	r, _ = db.Query("SELECT sal FROM EMP WHERE ename = 'ann'")
	fmt.Printf("\nann's salary after cache write-back: %v\n", r.Rows[0][0])
}
