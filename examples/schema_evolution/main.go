// Schema evolution via views (paper §5): a new application needs employees
// linked to medical records. With XNF this is a new view adding a viewed
// relationship — no base objects change, no existing application recompiles,
// no pointer sets are added to stored data (the OO-system pain the paper
// contrasts against).
package main

import (
	"fmt"
	"log"

	"sqlxnf"
)

func main() {
	db := sqlxnf.Open()

	// The operational database and the original application's view.
	db.MustExec(`
	CREATE TABLE DEPT (dno INT NOT NULL PRIMARY KEY, dname VARCHAR);
	CREATE TABLE EMP  (eno INT NOT NULL PRIMARY KEY, ename VARCHAR, edno INT);
	INSERT INTO DEPT VALUES (1, 'ops'), (2, 'labs');
	INSERT INTO EMP VALUES (10, 'ann', 1), (11, 'bob', 1), (12, 'cid', 2);

	CREATE VIEW ORG AS
	OUT OF Xdept AS DEPT, Xemp AS EMP,
	 employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno)
	TAKE *`)

	before, err := db.QueryCO("OUT OF ORG TAKE *")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original application's view:", before)

	// The new application arrives with its own data and its own view,
	// layered over ORG. Nothing about DEPT/EMP or the ORG view changes.
	db.MustExec(`
	CREATE TABLE MEDICAL (mid INT NOT NULL PRIMARY KEY, meno INT, note VARCHAR);
	INSERT INTO MEDICAL VALUES (900, 10, 'allergy'), (901, 12, 'checkup');

	CREATE VIEW ORG_MED AS
	OUT OF ORG,
	 Xmed AS MEDICAL,
	 medrecord AS (RELATE Xemp, Xmed WHERE Xemp.eno = Xmed.meno)
	TAKE *`)

	after, err := db.QueryCO("OUT OF ORG_MED TAKE *")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("new application's view:  ", after)

	// The original application still sees exactly what it used to.
	again, _ := db.QueryCO("OUT OF ORG TAKE *")
	fmt.Println("original view, unchanged:", again)

	// The new relationship is navigable and — because it is FK-shaped —
	// even updatable through the cache.
	c, err := db.QueryCache("OUT OF ORG_MED TAKE *")
	if err != nil {
		log.Fatal(err)
	}
	emps, _ := c.Open("Xemp")
	for emps.Next() {
		meds, _ := emps.OpenDependent("medrecord")
		for meds.Next() {
			fmt.Printf("%s -> %s\n",
				emps.Tuple().MustValue("ename"), meds.Tuple().MustValue("note"))
		}
	}

	// A casual user can even restrict through the new relationship ad hoc.
	co, err := db.QueryCO(`OUT OF ORG_MED
		WHERE Xemp e SUCH THAT EXISTS e->medrecord->Xmed
		TAKE Xdept(*), employment, Xemp(*), medrecord, Xmed(*)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("employees with medical records:", co)
}
