// Company organizational units: a walk through the paper's running example
// (Figures 1 and 3–5) — XNF views, views over views with an attributed M:N
// relationship, node and edge restrictions, recursive composite objects,
// path expressions, and CO-level deletion.
package main

import (
	"fmt"
	"log"

	"sqlxnf"
)

func main() {
	db := sqlxnf.Open()

	db.MustExec(`
	CREATE TABLE DEPT (dno INT NOT NULL PRIMARY KEY, dname VARCHAR, loc VARCHAR, budget FLOAT);
	CREATE TABLE EMP  (eno INT NOT NULL PRIMARY KEY, ename VARCHAR, sal FLOAT, descr VARCHAR, edno INT);
	CREATE TABLE PROJ (pno INT NOT NULL PRIMARY KEY, pname VARCHAR, budget FLOAT, pdno INT, pmgrno INT);
	CREATE TABLE EMPPROJ (epeno INT, eppno INT, percentage FLOAT);

	INSERT INTO DEPT VALUES (1, 'd-NY', 'NY', 1000000), (2, 'd-SF', 'SF', 500000);
	INSERT INTO EMP VALUES
	 (101, 'e1', 1500, 'staff', 1),
	 (102, 'e2', 2500, 'staff', 1),
	 (103, 'e3', 1200, 'staff', 2),
	 (104, 'e4', 3000, 'staff', 2);
	INSERT INTO PROJ VALUES
	 (201, 'p1', 300000, 2, NULL),
	 (202, 'p2', 900000, NULL, 102),
	 (203, 'p3', 100000, NULL, 103);
	INSERT INTO EMPPROJ VALUES (103, 202, 50), (104, 202, 50), (104, 203, 100);
	`)

	// The ALL_DEPS view — §3.2, the CO constructor bound to a view name.
	db.MustExec(`CREATE VIEW ALL_DEPS AS
	OUT OF Xdept AS DEPT, Xemp AS EMP, Xproj AS PROJ,
	 employment AS (RELATE Xdept, Xemp WHERE Xdept.dno = Xemp.edno),
	 ownership  AS (RELATE Xdept, Xproj WHERE Xdept.dno = Xproj.pdno)
	TAKE *`)

	// Views over views: add the attributed membership relationship derived
	// from the EMPPROJ base table (Fig. 3), then the projmanagement
	// relationship closing a cycle (Fig. 4).
	db.MustExec(`CREATE VIEW ALL_DEPS_ORG AS
	OUT OF ALL_DEPS,
	 membership AS (RELATE Xproj, Xemp
		WITH ATTRIBUTES ep.percentage
		USING EMPPROJ ep
		WHERE Xproj.pno = ep.eppno AND Xemp.eno = ep.epeno)
	TAKE *`)
	db.MustExec(`CREATE VIEW EXT_ALL_DEPS_ORG AS
	OUT OF ALL_DEPS_ORG,
	 projmanagement AS (RELATE Xemp, Xproj WHERE Xemp.eno = Xproj.pmgrno)
	TAKE *`)

	co, err := db.QueryCO("OUT OF EXT_ALL_DEPS_ORG TAKE *")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EXT_ALL_DEPS_ORG:", co)

	// Node restriction — §3.3: employees under 2000.
	co, _ = db.QueryCO("OUT OF ALL_DEPS WHERE Xemp e SUCH THAT e.sal < 2000 TAKE *")
	fmt.Println("\nEmployees under 2000:", co)

	// Edge restriction + structural projection — §3.3: employees making
	// less than 0.2% of their department's budget, projects dropped.
	co, _ = db.QueryCO(`OUT OF ALL_DEPS
		WHERE employment (d, e) SUCH THAT e.sal < d.budget / 500
		TAKE Xdept(*), Xemp(*), employment`)
	fmt.Println("Edge-restricted, Xproj projected away:", co)

	// Restriction on the recursive CO with a path expression — §3.4/3.5:
	// departments whose employees manage at least one project.
	co, _ = db.QueryCO(`OUT OF EXT_ALL_DEPS_ORG
		WHERE Xdept d SUCH THAT COUNT(d->employment->projmanagement) >= 1
		TAKE *`)
	fmt.Println("\nDepartments whose staff manage projects:")
	for _, row := range co.Node("Xdept").Rows {
		fmt.Printf("  %s\n", row[1])
	}

	// Reachability on the recursive graph (Fig. 5): restrict to NY and drop
	// ownership — p1 disappears, p2/p3 stay reachable via management and
	// membership.
	co, _ = db.QueryCO(`OUT OF EXT_ALL_DEPS_ORG
		WHERE Xdept SUCH THAT loc = 'NY'
		TAKE Xdept(*), employment, Xemp(*), projmanagement, membership(*), Xproj(*)`)
	fmt.Println("\nFig. 5 result:", co)

	// CO-level DELETE — §3.7: remove employees under 1300 from the base.
	r := db.MustExec(`OUT OF Xemp AS (SELECT * FROM EMP WHERE sal < 1300) DELETE *`)
	fmt.Printf("\nCO DELETE removed %d base tuples\n", r.RowsAffected)
	q, _ := db.Query("SELECT COUNT(*) FROM EMP")
	fmt.Printf("EMP now holds %v tuples\n", q.Rows[0][0])
}
