module sqlxnf

go 1.24.0
